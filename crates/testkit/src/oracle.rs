//! The differential-oracle layer.
//!
//! Each oracle compares two independent implementations of the same
//! quantity on one generated input and records a
//! [`Violation`](crate::report::Violation) on
//! disagreement — it never re-derives a theorem, it cross-examines the
//! code paths that claim to obey it:
//!
//! | oracle | claim | implementations compared |
//! |---|---|---|
//! | `bound_le_exact` | Thm 1/3 (and the baselines' papers): every lower bound is admissible in every possible world | each [`LowerBound`] vs. `ged::reference` |
//! | `engine_eq_reference` | engine refactors preserve A\* semantics | [`GedEngine`] vs. `ged::reference` (exact and τ-bounded) |
//! | `simp_eq_enumeration` | `verify_simp` computes Def. 6 | engine-backed verifier vs. direct per-world reference enumeration |
//! | `markov_ge_simp` | Thm 4: the Markov filter never under-estimates | `ub_simp` / `ub_simp_exact_tail` vs. exact `SimP_τ` |
//! | `grouped_eq_flat` | Sec. 6.2 grouping changes cost, not answers | grouped bound/verify vs. flat enumeration |
//! | `alpha_decision` | early exits are one-sided but the pass/fail verdict is exact | `verify_simp(α)` vs. exact `SimP_τ ≥ α` |
//! | `joins_agree` | pruning must not change results | all five join drivers vs. each other and vs. brute-force membership |

use crate::gen::derive_seed;
use crate::report::ConformanceReport;
use uqsj_ged::bounds::{all_bounds, LowerBound};
use uqsj_ged::reference::{ged_bounded_reference, ged_reference};
use uqsj_ged::GedEngine;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};
use uqsj_sample::SimpPolicy;
use uqsj_simjoin::{
    sim_join, sim_join_indexed, sim_join_parallel, CascadePolicy, JoinParams, JoinStrategy,
};
use uqsj_uncertain::groups::{partition_groups, ub_simp_grouped, verify_simp_groups_with};
use uqsj_uncertain::prob::verify_simp_with;
use uqsj_uncertain::prob_bound::{ub_simp, ub_simp_exact_tail};
use uqsj_uncertain::SplitHeuristic;

/// Tolerance for comparing two *different enumeration orders* of the same
/// probability sum (float products accumulate in different orders).
const PROB_EPS: f64 = 1e-9;

/// Guard band around α: pairs whose exact probability lands this close to
/// the threshold are excluded from membership verdicts, since different
/// (all correct) accumulation orders may legitimately disagree there.
const ALPHA_GUARD: f64 = 1e-6;

/// The pair-level oracles. Holds the bound list once; a test-only
/// mutation hook can deliberately weaken one bound to prove the suite
/// detects over-pruning (see `mutation` below).
pub struct PairOracles {
    bounds: Vec<Box<dyn LowerBound + Send + Sync>>,
    /// When set, the named bound's value is inflated by this much before
    /// the admissibility comparison — a deliberate, test-only fault
    /// injection. Compiled only under `cfg(test)`, so release binaries
    /// physically cannot carry a weakened oracle.
    #[cfg(test)]
    pub(crate) mutation: Option<(&'static str, u32)>,
}

impl Default for PairOracles {
    fn default() -> Self {
        Self::new()
    }
}

impl PairOracles {
    /// Oracles over [`all_bounds`].
    pub fn new() -> Self {
        Self {
            bounds: all_bounds(),
            #[cfg(test)]
            mutation: None,
        }
    }

    /// A bound's value with the test-only mutation applied.
    fn certain_value(&self, b: &dyn LowerBound, t: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
        let v = b.certain(t, q, g);
        #[cfg(test)]
        if let Some((name, add)) = self.mutation {
            if name == b.name() {
                return v + add;
            }
        }
        v
    }

    fn uncertain_value(
        &self,
        b: &dyn LowerBound,
        t: &SymbolTable,
        q: &Graph,
        g: &UncertainGraph,
    ) -> u32 {
        let v = b.uncertain(t, q, g);
        #[cfg(test)]
        if let Some((name, add)) = self.mutation {
            if name == b.name() {
                return v + add;
            }
        }
        v
    }

    /// Run every per-pair oracle on `(q, g)`, recording coverage and
    /// violations into `report`. `seed` is the pair's replay seed.
    ///
    /// The caller guarantees `g.world_count()` is small (the generators
    /// cap it); this enumerates every world twice — once against the
    /// reference A\* and once through the production verifier.
    pub fn check_pair(
        &self,
        engine: &mut GedEngine,
        table: &SymbolTable,
        q: &Graph,
        g: &UncertainGraph,
        seed: u64,
        report: &mut ConformanceReport,
    ) {
        report.pairs += 1;
        // Per-world exact distances via the naive reference — the ground
        // truth everything else is measured against.
        let uncertain_values: Vec<(&'static str, u32)> = self
            .bounds
            .iter()
            .map(|b| (b.name(), self.uncertain_value(b.as_ref(), table, q, g)))
            .collect();
        let mut world_dists: Vec<(f64, u32)> = Vec::new();
        for world in g.possible_worlds() {
            report.worlds += 1;
            let exact = ged_reference(table, q, &world.graph).distance;
            world_dists.push((world.prob, exact));

            // Oracle: every bound is admissible in this world, both the
            // certain form (on the materialized world) and the uncertain
            // form (which must hold for *every* world — Theorem 3 for
            // CSS, structure-only soundness for the baselines).
            for b in &self.bounds {
                let lb = self.certain_value(b.as_ref(), table, q, &world.graph);
                *report.bound_checks.entry(b.name()).or_default() += 1;
                if lb > exact {
                    report.violation(
                        "bound_le_exact",
                        seed,
                        format!("{} certain bound {lb} > exact GED {exact}", b.name()),
                    );
                }
            }
            for &(name, lb) in &uncertain_values {
                if lb > exact {
                    report.violation(
                        "bound_le_exact",
                        seed,
                        format!("{name} uncertain bound {lb} > exact world GED {exact}"),
                    );
                }
            }

            // Oracle: the production engine reproduces the reference.
            report.engine_checks += 1;
            let engine_exact = engine.ged(table, q, &world.graph).distance;
            if engine_exact != exact {
                report.violation(
                    "engine_eq_reference",
                    seed,
                    format!("engine GED {engine_exact} != reference {exact}"),
                );
            }
            for tau in [exact.saturating_sub(1), exact, exact + 1] {
                let e = engine.ged_bounded(table, q, &world.graph, tau).map(|r| r.distance);
                let r = ged_bounded_reference(table, q, &world.graph, tau).map(|r| r.distance);
                if e != r {
                    report.violation(
                        "engine_eq_reference",
                        seed,
                        format!("τ-bounded at τ={tau}: engine {e:?} != reference {r:?}"),
                    );
                }
            }
        }

        // τ values straddling the boundary: the extreme world distances
        // plus one on each side.
        let dmin = world_dists.iter().map(|&(_, d)| d).min().unwrap_or(0);
        let dmax = world_dists.iter().map(|&(_, d)| d).max().unwrap_or(0);
        let mut taus = vec![dmin.saturating_sub(1), dmin, dmin.midpoint(dmax), dmax, dmax + 1];
        taus.sort_unstable();
        taus.dedup();

        for tau in taus {
            // Ground-truth SimP_τ from the reference distances.
            let exact_simp: f64 =
                world_dists.iter().filter(|&&(_, d)| d <= tau).map(|&(p, _)| p).sum();

            // Oracle: the production flat verifier computes Def. 6.
            report.simp_flat += 1;
            let flat = verify_simp_with(engine, table, q, g, tau, f64::INFINITY);
            if (flat.prob - exact_simp).abs() > PROB_EPS {
                report.violation(
                    "simp_eq_enumeration",
                    seed,
                    format!("τ={tau}: verifier SimP {} != reference {exact_simp}", flat.prob),
                );
            }

            // Oracle: Theorem 4 and its exact-tail refinement.
            let markov = ub_simp(table, q, g, tau);
            if markov + PROB_EPS < exact_simp {
                report.violation(
                    "markov_ge_simp",
                    seed,
                    format!("τ={tau}: Markov bound {markov} < exact SimP {exact_simp}"),
                );
            }
            let tail = ub_simp_exact_tail(table, q, g, tau);
            if tail + PROB_EPS < exact_simp || tail > markov + PROB_EPS {
                report.violation(
                    "markov_ge_simp",
                    seed,
                    format!(
                        "τ={tau}: exact tail {tail} outside [SimP {exact_simp}, Markov {markov}]"
                    ),
                );
            }

            // Oracle: grouping refines the bound and preserves answers.
            for gn in [2usize, 4] {
                let (grouped_ub, parts) = ub_simp_grouped(table, q, g, tau, gn);
                if grouped_ub + PROB_EPS < exact_simp {
                    report.violation(
                        "grouped_eq_flat",
                        seed,
                        format!("τ={tau} GN={gn}: grouped bound {grouped_ub} < exact {exact_simp}"),
                    );
                }
                if grouped_ub > markov + PROB_EPS {
                    report.violation(
                        "grouped_eq_flat",
                        seed,
                        format!("τ={tau} GN={gn}: grouped bound {grouped_ub} > Markov {markov}"),
                    );
                }
                report.simp_grouped += 1;
                let grouped =
                    verify_simp_groups_with(engine, table, q, g, tau, f64::INFINITY, &parts);
                // Grouped verification skips whole groups whose *group*
                // lower bound exceeds τ — sound (no world in them can
                // pass), so the full-enumeration probability must agree.
                if (grouped.prob - exact_simp).abs() > PROB_EPS {
                    report.violation(
                        "grouped_eq_flat",
                        seed,
                        format!(
                            "τ={tau} GN={gn}: grouped SimP {} != flat enumeration {exact_simp}",
                            grouped.prob
                        ),
                    );
                }
            }
            // Both split heuristics produce valid partitions: their
            // groups tile the world set (mass conservation).
            for h in [SplitHeuristic::HighestMass, SplitHeuristic::MostLabels] {
                let parts = partition_groups(table, q, g, tau, 3, h);
                let mass: f64 = parts.iter().map(|p| p.mass()).sum();
                let total: f64 = g.vertices().iter().map(|v| v.mass()).product();
                let expected = if g.vertex_count() == 0 { 0.0 } else { total };
                if (mass - expected).abs() > PROB_EPS && g.vertex_count() > 0 {
                    report.violation(
                        "grouped_eq_flat",
                        seed,
                        format!("τ={tau} {h:?}: partition mass {mass} != total {expected}"),
                    );
                }
            }

            // Oracle: the α decision is exact despite one-sided early
            // exits, at α values biased toward the boundary.
            for alpha in [
                (exact_simp - 0.05).clamp(0.01, 1.0),
                (exact_simp + 0.05).clamp(0.01, 1.0),
                0.25,
                0.75,
            ] {
                if (exact_simp - alpha).abs() < ALPHA_GUARD {
                    continue;
                }
                let out = verify_simp_with(engine, table, q, g, tau, alpha);
                let want = exact_simp >= alpha;
                if out.passed != want {
                    report.violation(
                        "alpha_decision",
                        seed,
                        format!(
                            "τ={tau} α={alpha}: verifier passed={} but exact SimP {exact_simp}",
                            out.passed
                        ),
                    );
                }
                if out.passed && out.best_mapping.is_none() {
                    report.violation(
                        "alpha_decision",
                        seed,
                        format!("τ={tau} α={alpha}: passed without a best-world mapping"),
                    );
                }
            }
        }
    }
}

/// Sorted result-pair set of a join outcome.
fn pair_set(matches: &[uqsj_simjoin::JoinMatch]) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> = matches.iter().map(|m| (m.q_index, m.g_index)).collect();
    pairs.sort_unstable();
    pairs
}

/// Nudge α away from every exact pair probability so that legitimate
/// accumulation-order float differences cannot flip a membership verdict.
fn guard_alpha(mut alpha: f64, exact: &[f64]) -> f64 {
    while exact.iter().any(|p| (p - alpha).abs() < ALPHA_GUARD) {
        alpha += 3.7 * ALPHA_GUARD;
    }
    alpha.min(1.0)
}

/// Oracle: all five join drivers return the same result set, and that set
/// is exactly `{(q, g) : SimP_τ(q, g) ≥ α}` by brute-force evaluation.
// Mirrors the join signature plus the shared engine/report plumbing.
#[allow(clippy::too_many_arguments)]
pub fn check_join_agreement(
    engine: &mut GedEngine,
    table: &SymbolTable,
    d: &[Graph],
    u: &[UncertainGraph],
    tau: u32,
    alpha: f64,
    seed: u64,
    report: &mut ConformanceReport,
) {
    // Brute-force membership: exact SimP per pair via full enumeration.
    let mut exact = Vec::with_capacity(d.len() * u.len());
    let mut expected = Vec::new();
    for (gi, g) in u.iter().enumerate() {
        for (qi, q) in d.iter().enumerate() {
            let p = verify_simp_with(engine, table, q, g, tau, f64::INFINITY).prob;
            exact.push(p);
            expected.push(((qi, gi), p));
        }
    }
    let alpha = guard_alpha(alpha, &exact);
    let mut want: Vec<(usize, usize)> =
        expected.iter().filter(|&&(_, p)| p >= alpha).map(|&(pair, _)| pair).collect();
    want.sort_unstable();

    let params = |strategy| JoinParams { strategy, ..JoinParams::simj(tau, alpha) };
    let runs: Vec<(&'static str, Vec<(usize, usize)>)> = vec![
        ("css_only", pair_set(&sim_join(table, d, u, params(JoinStrategy::CssOnly)).0)),
        ("simj", pair_set(&sim_join(table, d, u, params(JoinStrategy::SimJ)).0)),
        (
            "simj_opt",
            pair_set(&sim_join(table, d, u, params(JoinStrategy::SimJOpt { group_count: 4 })).0),
        ),
        ("parallel", pair_set(&sim_join_parallel(table, d, u, params(JoinStrategy::SimJ), 3).0)),
        ("indexed", pair_set(&sim_join_indexed(table, d, u, params(JoinStrategy::SimJ)).0)),
    ];
    for (name, pairs) in &runs {
        *report.join_runs.entry(name).or_default() += 1;
        if pairs != &want {
            report.violation(
                "joins_agree",
                seed,
                format!(
                    "τ={tau} α={alpha}: {name} returned {pairs:?}, brute force expects {want:?}"
                ),
            );
        }
    }

    // Cascade-plan invariance: every filter stage is individually sound,
    // so *any* permutation or subset of the cascade must return exactly
    // the brute-force result set. Twelve seed-derived shuffled plans per
    // call (each a different order + drop mask over the full bound
    // registry and the probabilistic stages), plus one adaptive run with
    // the planner's knobs shrunk so calibration, probing, and epoch
    // re-planning all exercise on this small workload. Replay a failure
    // with `uqsj-cli conformance --seed <sub-seed> --pairs 1`.
    for k in 0..12u64 {
        let shuffle_seed = derive_seed(seed, 70 + k);
        let strategy =
            if k % 2 == 0 { JoinStrategy::SimJ } else { JoinStrategy::SimJOpt { group_count: 4 } };
        let shuffled_params = params(strategy).with_cascade(CascadePolicy::shuffled(shuffle_seed));
        let got = pair_set(&sim_join(table, d, u, shuffled_params).0);
        *report.join_runs.entry("shuffled_cascade").or_default() += 1;
        if got != want {
            report.violation(
                "joins_agree",
                seed,
                format!(
                    "τ={tau} α={alpha} shuffle_seed={shuffle_seed}: shuffled_cascade returned \
                     {got:?}, brute force expects {want:?}"
                ),
            );
        }
    }
    let adaptive = CascadePolicy::adaptive()
        .with_calibration_pairs(4)
        .with_epoch_pairs(8)
        .with_probe_interval(4);
    let got = pair_set(&sim_join(table, d, u, params(JoinStrategy::SimJ).with_cascade(adaptive)).0);
    *report.join_runs.entry("adaptive_cascade").or_default() += 1;
    if got != want {
        report.violation(
            "joins_agree",
            seed,
            format!(
                "τ={tau} α={alpha}: adaptive_cascade returned {got:?}, \
                 brute force expects {want:?}"
            ),
        );
    }

    // Sixth run: the adaptive sampling tier, forced onto every refined
    // pair by a world-count threshold of 2. α is re-placed a full
    // guarantee band (ε plus margin) away from every exact probability,
    // and δ is pushed so low that a disagreement is evidence of a bug in
    // the sampler, not sampling noise — which makes a hard violation the
    // right response even for a probabilistic tier.
    let sample_eps = 0.05;
    let sample_alpha = guard_alpha_band(alpha, &exact, sample_eps + 0.01);
    let mut sampled_want: Vec<(usize, usize)> =
        expected.iter().filter(|&&(_, p)| p >= sample_alpha).map(|&(pair, _)| pair).collect();
    sampled_want.sort_unstable();
    let policy = SimpPolicy::auto(sample_eps, 1e-9, derive_seed(seed, 61)).with_threshold(2);
    let sampled_params = JoinParams { simp: policy, ..JoinParams::simj(tau, sample_alpha) };
    let sampled = pair_set(&sim_join(table, d, u, sampled_params).0);
    *report.join_runs.entry("auto_tier").or_default() += 1;
    if sampled != sampled_want {
        report.violation(
            "joins_agree",
            seed,
            format!(
                "τ={tau} α={sample_alpha}: auto_tier returned {sampled:?}, \
                 brute force expects {sampled_want:?}"
            ),
        );
    }
}

/// Like [`guard_alpha`] but with a caller-chosen band: push α upward
/// until it clears every exact probability by more than `band`, so the
/// sampling tier's (ε,δ) guarantee applies to every membership verdict.
fn guard_alpha_band(mut alpha: f64, exact: &[f64], band: f64) -> f64 {
    while exact.iter().any(|p| (p - alpha).abs() <= band) {
        alpha += 1.5 * band;
    }
    alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{near_pair, GenConfig};

    /// The acceptance-criteria mutation test: a deliberately weakened
    /// (inflated) bound must be caught by the admissibility oracle. This
    /// is the suite auditing itself — if fault injection ever stops
    /// producing violations, the oracle has gone blind.
    #[test]
    fn weakened_bound_is_caught() {
        let cfg = GenConfig::default();
        for name in ["CSS", "Size", "LM"] {
            let mut oracles = PairOracles::new();
            oracles.mutation = Some((name, 1));
            let mut engine = GedEngine::new();
            let mut report = ConformanceReport::default();
            let mut table = SymbolTable::new();
            for seed in 0..40u64 {
                let (q, g) = near_pair(&mut table, &cfg, seed);
                oracles.check_pair(&mut engine, &table, &q, &g, seed, &mut report);
            }
            assert!(
                report.violations.iter().any(|v| v.oracle == "bound_le_exact"),
                "a +1-weakened {name} bound slipped past the admissibility oracle"
            );
        }
    }

    /// Sanity: the unmutated oracles pass on the same inputs the mutation
    /// test uses (so the failures above are attributable to the fault).
    #[test]
    fn unmutated_oracles_pass() {
        let cfg = GenConfig::default();
        let oracles = PairOracles::new();
        let mut engine = GedEngine::new();
        let mut report = ConformanceReport::default();
        let mut table = SymbolTable::new();
        for seed in 0..40u64 {
            let (q, g) = near_pair(&mut table, &cfg, seed);
            oracles.check_pair(&mut engine, &table, &q, &g, seed, &mut report);
        }
        assert!(report.passed(), "violations: {:#?}", report.violations);
    }
}
