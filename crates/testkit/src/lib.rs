//! # uqsj-testkit — workspace-wide conformance testing
//!
//! The pipeline's correctness claims are layered: every GED lower bound
//! must hold in **every possible world** (Theorems 1/3), the Markov filter
//! must upper-bound the exact similarity probability (Theorem 4), and all
//! join procedures must return identical result sets. This crate turns
//! those claims into one reusable harness:
//!
//! * [`gen`] — seeded, τ/α-boundary-biased generators: certain graphs,
//!   uncertain graphs with bounded world counts, near-threshold pairs and
//!   full join workloads. Every generator is a pure function of a `u64`
//!   seed, so any failure replays from the seed printed with it.
//! * [`oracle`] — the differential-oracle layer: per generated pair and
//!   per possible world it checks every lower bound against the exact
//!   reference GED, the production engine against `ged::reference`, the
//!   Markov/grouped probability bounds against exact `SimP_τ`, and the
//!   five join drivers against each other *and* against a brute-force
//!   membership predicate.
//! * [`sample_oracle`] — the Monte-Carlo tier's differential check:
//!   sampled accept/reject decisions vs. exact enumeration on enumerable
//!   instances, with the aggregate failure rate held to the sampler's δ
//!   budget and hard violations for its deterministic invariants.
//! * [`metamorphic`] — invariance checks: label renaming, vertex/edge
//!   insertion-order permutation, and monotonicity in τ and α.
//! * [`bgp`] — the BGP evaluation oracle: seeded star/path/triangle/
//!   cyclic patterns over synthetic KBs, leapfrog triejoin vs. the
//!   nested-loop reference, metamorphic pattern/rename/monotonicity
//!   relations, estimator q-error sanity, and planner-vs-greedy seek
//!   accounting.
//! * [`runner`] — the conformance runner behind `uqsj-cli conformance`
//!   and the CI quick/deep profiles; [`report`] is its outcome type.
//!
//! The suite is *differential*: it never re-derives a theorem, it compares
//! independent implementations (fast vs. naive, bound vs. exact, pruned
//! vs. enumerated) on seeded workloads biased toward the τ/α decision
//! boundaries where an unsound bound would actually flip an answer.

pub mod bgp;
pub mod gen;
pub mod metamorphic;
pub mod oracle;
pub mod report;
pub mod runner;
pub mod sample_oracle;

pub use gen::{GenConfig, SyntheticFamily, SyntheticSpec};
pub use report::{ConformanceReport, Violation};
pub use runner::{run_conformance, ConformanceConfig, Profile};
