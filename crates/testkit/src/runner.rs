//! The conformance runner behind `uqsj-cli conformance` and CI.
//!
//! One run is a pure function of `(profile, seed, pairs)`. Each generated
//! pair gets its own sub-seed derived from the base seed, and every
//! violation carries the sub-seed of the input that produced it — so a
//! failing CI line replays locally with
//! `uqsj-cli conformance --seed <sub-seed> --pairs 1`.
//!
//! Each pair is additionally checked under a request context whose trace
//! id **is** the sub-seed, so a replayed failure's spans can be pulled
//! from the flight recorder with `events_for(sub_seed)` — the same
//! introspection path the serving pipeline uses for `/debug/trace?id=`.

use crate::bgp::{build_store, check_bgp_case, gen_kb, gen_query, BgpGenConfig};
use crate::gen::{
    derive_seed, gen_certain, gen_uncertain, near_pair, rng_for, workload, GenConfig,
};
use crate::metamorphic::check_metamorphic;
use crate::oracle::{check_join_agreement, PairOracles};
use crate::report::ConformanceReport;
use crate::sample_oracle::{allowed_failures, check_sampler_pair, SAMPLE_DELTA};
use uqsj_ged::GedEngine;
use uqsj_graph::SymbolTable;

/// How much work one conformance run does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// The per-push CI gate: small shapes, tens of pairs, a few seconds.
    Quick,
    /// The scheduled fuzz loop: larger shapes and many more pairs.
    Deep,
}

/// Parameters of one conformance run.
#[derive(Clone, Copy, Debug)]
pub struct ConformanceConfig {
    /// Base seed; every generated object derives its sub-seed from it.
    pub seed: u64,
    /// Number of pairs to generate and check.
    pub pairs: usize,
    /// Workload shapes and depth.
    pub profile: Profile,
}

impl ConformanceConfig {
    /// The per-push profile (~seconds in a release build).
    pub fn quick(seed: u64) -> Self {
        Self { seed, pairs: 48, profile: Profile::Quick }
    }

    /// The scheduled fuzz profile.
    pub fn deep(seed: u64) -> Self {
        Self { seed, pairs: 384, profile: Profile::Deep }
    }

    fn gen_config(&self) -> GenConfig {
        match self.profile {
            Profile::Quick => GenConfig::default(),
            Profile::Deep => GenConfig::deep(),
        }
    }
}

/// Run the full conformance suite: per-pair differential oracles,
/// metamorphic relations, and join-driver agreement. Returns the
/// aggregated report; `report.passed()` is the verdict.
pub fn run_conformance(cfg: &ConformanceConfig) -> ConformanceReport {
    let gen_cfg = cfg.gen_config();
    let mut table = SymbolTable::new();
    let mut engine = GedEngine::new();
    let mut report = ConformanceReport::default();
    let oracles = PairOracles::new();

    // Stage 1+2: pair oracles and metamorphic relations. Two in three
    // pairs are near-threshold (boundary-biased); the rest independent,
    // so clean rejections are covered too.
    for i in 0..cfg.pairs {
        let sub = derive_seed(cfg.seed, i as u64);
        // Trace every pair under its sub-seed: a failing seed replays
        // with its spans addressable via `events_for(sub)`.
        let _ctx = uqsj_obs::ctx::install(uqsj_obs::ctx::RequestCtx::with_trace_id(
            uqsj_obs::ctx::TraceId(sub.max(1)),
        ));
        let _span = uqsj_obs::span("conformance.pair");
        let (q, g) = if i % 3 == 2 {
            (
                gen_certain(&mut table, &gen_cfg, derive_seed(sub, 10)),
                gen_uncertain(&mut table, &gen_cfg, derive_seed(sub, 11)),
            )
        } else {
            near_pair(&mut table, &gen_cfg, sub)
        };
        oracles.check_pair(&mut engine, &table, &q, &g, sub, &mut report);
        if i % 2 == 0 || cfg.profile == Profile::Deep {
            let mut rng = rng_for(derive_seed(sub, 99));
            check_metamorphic(&mut engine, &mut table, &q, &g, sub, &mut rng, &mut report);
        }
    }

    // Stage 3: five-way join agreement on small workloads, at (τ, α)
    // combinations on both sides of typical pair probabilities.
    let join_rounds = match cfg.profile {
        Profile::Quick => 2,
        Profile::Deep => 6,
    };
    let count = match cfg.profile {
        Profile::Quick => 5,
        Profile::Deep => 8,
    };
    for round in 0..join_rounds {
        let sub = derive_seed(cfg.seed, 1_000_000 + round);
        let _ctx = uqsj_obs::ctx::install(uqsj_obs::ctx::RequestCtx::with_trace_id(
            uqsj_obs::ctx::TraceId(sub.max(1)),
        ));
        let _span = uqsj_obs::span("conformance.join");
        let (d, u) = workload(&mut table, &gen_cfg, count, sub);
        let tau = 1 + (round % 2) as u32;
        let alpha = if round % 2 == 0 { 0.3 } else { 0.6 };
        check_join_agreement(&mut engine, &table, &d, &u, tau, alpha, sub, &mut report);
    }

    // Stage 4: the sampling tier vs. exact enumeration, pair by pair.
    // Individual wrong decisions are allowed (the tier is probabilistic);
    // the aggregate failure rate must stay inside the δ budget.
    let sample_pairs = match cfg.profile {
        Profile::Quick => cfg.pairs / 2,
        Profile::Deep => cfg.pairs,
    };
    for i in 0..sample_pairs {
        let sub = derive_seed(cfg.seed, 2_000_000 + i as u64);
        let _ctx = uqsj_obs::ctx::install(uqsj_obs::ctx::RequestCtx::with_trace_id(
            uqsj_obs::ctx::TraceId(sub.max(1)),
        ));
        let _span = uqsj_obs::span("conformance.sample");
        let (q, g) = near_pair(&mut table, &gen_cfg, sub);
        check_sampler_pair(&mut engine, &table, &q, &g, sub, &mut report);
    }
    let allowed = allowed_failures(report.sample_trials, SAMPLE_DELTA);
    if report.sample_failures > allowed {
        report.violation(
            "sampler_delta",
            cfg.seed,
            format!(
                "{} guaranteed sampled decisions failed over {} trials; \
                 the δ={SAMPLE_DELTA} budget allows {allowed}",
                report.sample_failures, report.sample_trials
            ),
        );
    }

    // Stage 5: the BGP evaluation oracle — leapfrog triejoin vs. the
    // nested-loop reference on seeded star/path/triangle/cyclic patterns,
    // plus the BGP metamorphic relations and estimator/planner tracking.
    // The KB rotates every few cases so patterns hit many stores.
    let (bgp_cases, bgp_cfg) = match cfg.profile {
        Profile::Quick => (240usize, BgpGenConfig::quick()),
        Profile::Deep => (960usize, BgpGenConfig::deep()),
    };
    let mut kb = Vec::new();
    let mut store = uqsj_rdf::TripleStore::new();
    for i in 0..bgp_cases {
        let sub = derive_seed(cfg.seed, 3_000_000 + i as u64);
        let _ctx = uqsj_obs::ctx::install(uqsj_obs::ctx::RequestCtx::with_trace_id(
            uqsj_obs::ctx::TraceId(sub.max(1)),
        ));
        let _span = uqsj_obs::span("conformance.bgp");
        if i % 12 == 0 {
            kb = gen_kb(&bgp_cfg, derive_seed(sub, 1));
            store = build_store(&kb);
        }
        let query = gen_query(&kb, derive_seed(sub, 2));
        check_bgp_case(&kb, &store, &query, sub, &mut report);
    }
    // Aggregate ordering check: the summary-based planner may lose to the
    // greedy order on individual patterns, but across the whole workload
    // it must not burn meaningfully more trie seeks.
    let slack = report.bgp_greedy_seeks / 4 + 2_000;
    if report.bgp_planner_seeks > report.bgp_greedy_seeks + slack {
        report.violation(
            "bgp_planner_order",
            cfg.seed,
            format!(
                "planner order cost {} seeks vs {} for the greedy order \
                 (allowed slack {slack})",
                report.bgp_planner_seeks, report.bgp_greedy_seeks
            ),
        );
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_deterministic() {
        let cfg = ConformanceConfig { seed: 7, pairs: 4, profile: Profile::Quick };
        let a = run_conformance(&cfg);
        let b = run_conformance(&cfg);
        assert_eq!(a.passed(), b.passed());
        assert_eq!(a.worlds, b.worlds);
        assert_eq!(a.bound_checks, b.bound_checks);
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn pairs_are_traced_under_their_sub_seed() {
        let cfg = ConformanceConfig { seed: 11, pairs: 2, profile: Profile::Quick };
        run_conformance(&cfg);
        // The first pair's spans are addressable by its sub-seed — the
        // same lookup `/debug/trace?id=` and a failure replay would use.
        let sub = derive_seed(cfg.seed, 0).max(1);
        let events = uqsj_obs::trace::recorder().events_for(sub);
        assert!(
            events.iter().any(|e| e.name == "conformance.pair"),
            "no conformance.pair span recorded under sub-seed {sub:016x}"
        );
    }
}
