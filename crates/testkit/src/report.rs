//! Conformance outcome types: violations and the aggregated report.

use std::collections::BTreeMap;
use std::fmt;

/// One failed oracle check. `seed` regenerates the exact input via
/// [`crate::runner::run_conformance`] (`uqsj-cli conformance --seed N`),
/// so every violation is reproducible from its printed line alone.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the oracle that failed (e.g. `bound_le_exact`).
    pub oracle: &'static str,
    /// The sub-seed that regenerates the failing input.
    pub seed: u64,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] seed={} {}", self.oracle, self.seed, self.detail)
    }
}

/// Aggregated outcome of one conformance run: coverage counters plus the
/// list of violations (empty on a passing run).
#[derive(Clone, Debug, Default)]
pub struct ConformanceReport {
    /// Pairs generated and checked.
    pub pairs: usize,
    /// Possible worlds enumerated across all pairs.
    pub worlds: u64,
    /// Per-bound check counts (bound name → `bound <= exact` checks).
    pub bound_checks: BTreeMap<&'static str, u64>,
    /// Engine-vs-reference GED comparisons.
    pub engine_checks: u64,
    /// Flat (enumeration) SimP evaluations.
    pub simp_flat: u64,
    /// Grouped (partitioned) SimP evaluations.
    pub simp_grouped: u64,
    /// Per-join-variant run counts (variant name → joins executed).
    pub join_runs: BTreeMap<&'static str, u64>,
    /// Metamorphic checks executed.
    pub metamorphic_checks: u64,
    /// Sampled SimP decisions made under an (ε,δ) certificate.
    pub sample_trials: u64,
    /// Guaranteed sampled decisions that disagreed with exact
    /// enumeration. Bounded by δ in aggregate (the runner enforces the
    /// budget); individual failures are expected noise, not violations.
    pub sample_failures: u64,
    /// BGP patterns checked by the lftj ≡ reference oracle.
    pub bgp_patterns: u64,
    /// Distinct solution rows produced across all BGP cases.
    pub bgp_rows: u64,
    /// BGP metamorphic checks (permutation / rename / monotonicity ×
    /// both evaluators).
    pub bgp_metamorphic: u64,
    /// Total trie seeks under the summary-based planner's order.
    pub bgp_planner_seeks: u64,
    /// Total trie seeks under the greedy one-step-lookahead order on the
    /// same cases (the runner asserts the planner never systematically
    /// degrades this).
    pub bgp_greedy_seeks: u64,
    /// Worst cardinality-estimator q-error observed, ×100.
    pub bgp_qerror_x100_max: u64,
    /// All violations, in discovery order.
    pub violations: Vec<Violation>,
}

impl ConformanceReport {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Record a violation.
    pub fn violation(&mut self, oracle: &'static str, seed: u64, detail: String) {
        self.violations.push(Violation { oracle, seed, detail });
    }

    /// Fold another report (e.g. from a different stage) into this one.
    pub fn merge(&mut self, other: ConformanceReport) {
        self.pairs += other.pairs;
        self.worlds += other.worlds;
        for (k, v) in other.bound_checks {
            *self.bound_checks.entry(k).or_default() += v;
        }
        self.engine_checks += other.engine_checks;
        self.simp_flat += other.simp_flat;
        self.simp_grouped += other.simp_grouped;
        for (k, v) in other.join_runs {
            *self.join_runs.entry(k).or_default() += v;
        }
        self.metamorphic_checks += other.metamorphic_checks;
        self.sample_trials += other.sample_trials;
        self.sample_failures += other.sample_failures;
        self.bgp_patterns += other.bgp_patterns;
        self.bgp_rows += other.bgp_rows;
        self.bgp_metamorphic += other.bgp_metamorphic;
        self.bgp_planner_seeks += other.bgp_planner_seeks;
        self.bgp_greedy_seeks += other.bgp_greedy_seeks;
        self.bgp_qerror_x100_max = self.bgp_qerror_x100_max.max(other.bgp_qerror_x100_max);
        self.violations.extend(other.violations);
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "conformance: {} pairs, {} possible worlds", self.pairs, self.worlds)?;
        write!(f, "  bounds:")?;
        for (name, count) in &self.bound_checks {
            write!(f, " {name}={count}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  engine-vs-reference: {} | SimP flat: {} grouped: {} | metamorphic: {}",
            self.engine_checks, self.simp_flat, self.simp_grouped, self.metamorphic_checks
        )?;
        write!(f, "  joins:")?;
        for (name, count) in &self.join_runs {
            write!(f, " {name}={count}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  sampler: trials={} guaranteed-failures={}",
            self.sample_trials, self.sample_failures
        )?;
        writeln!(
            f,
            "  bgp: patterns={} rows={} metamorphic={} seeks planner={} greedy={} \
             qerror-max={:.2}",
            self.bgp_patterns,
            self.bgp_rows,
            self.bgp_metamorphic,
            self.bgp_planner_seeks,
            self.bgp_greedy_seeks,
            self.bgp_qerror_x100_max as f64 / 100.0
        )?;
        if self.violations.is_empty() {
            write!(f, "  PASS: zero violations")
        } else {
            writeln!(f, "  FAIL: {} violation(s)", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "    {v}")?;
            }
            write!(f, "  replay any line with: uqsj-cli conformance --seed <seed> --pairs 1")
        }
    }
}
