//! Seeded generators for conformance workloads.
//!
//! Everything here is a pure function of a `u64` seed: the same seed
//! always regenerates the same graphs, pairs and workloads, so a failing
//! check replays from the seed alone (`uqsj-cli conformance --seed N`).
//!
//! The generators are *boundary-biased*: uncertain graphs are derived
//! from certain ones by a small number of edit perturbations, so the
//! exact GED of most pairs sits within a couple of units of the CSS lower
//! bound, and the τ values the runner derives per pair straddle that
//! boundary. An unsound bound (one that over-prunes) flips an actual join
//! answer on such workloads instead of hiding behind slack.

use rand::rngs::SmallRng;
use rand::Rng;
use uqsj_graph::{
    Graph, LabelAlternative, Symbol, SymbolTable, UncertainGraph, UncertainVertex, VertexId,
};
use uqsj_workload::{
    aids_like, erdos_renyi, qald_like, scale_free, Dataset, DatasetConfig, RandomGraphConfig,
};

/// Shape parameters for the conformance generators. Sizes are kept small
/// enough that the *reference* exact GED (the naive A\* oracle) and full
/// possible-world enumeration stay cheap per pair.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Maximum vertices per graph (inclusive; at least 1 is generated).
    pub max_vertices: usize,
    /// Maximum extra edges beyond a random spanning forest.
    pub max_extra_edges: usize,
    /// Vertex label pool size.
    pub label_pool: usize,
    /// Edge label pool size.
    pub edge_label_pool: usize,
    /// Probability that a vertex label is a SPARQL variable (wildcard).
    pub wildcard_prob: f64,
    /// Probability that an uncertain vertex carries more than one label.
    pub uncertain_fraction: f64,
    /// Maximum alternatives per uncertain vertex.
    pub max_alternatives: usize,
    /// Cap on the possible-world count of one uncertain graph, so
    /// exhaustive per-world oracles stay cheap.
    pub max_worlds: u128,
    /// Edit operations applied when deriving the uncertain half of a
    /// near-threshold pair.
    pub perturbation: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            max_vertices: 6,
            max_extra_edges: 3,
            label_pool: 8,
            edge_label_pool: 4,
            wildcard_prob: 0.15,
            uncertain_fraction: 0.5,
            max_alternatives: 3,
            max_worlds: 64,
            perturbation: 2,
        }
    }
}

impl GenConfig {
    /// The larger shapes used by the `--deep` fuzz profile.
    pub fn deep() -> Self {
        Self { max_vertices: 8, max_extra_edges: 5, max_worlds: 256, ..Self::default() }
    }
}

// Seeded RNG plumbing lives in `uqsj_sample::seed` (shared with the
// Monte-Carlo sampler, so a conformance sub-seed and a sampled join
// decision derive from the same splitmix64 stream discipline); re-export
// the original testkit names.
pub use uqsj_sample::seed::{derive_seed, rng_for};

fn vertex_label(table: &mut SymbolTable, cfg: &GenConfig, rng: &mut SmallRng) -> Symbol {
    if rng.gen_bool(cfg.wildcard_prob) {
        table.intern(&format!("?v{}", rng.gen_range(0..3)))
    } else {
        table.intern(&format!("L{}", rng.gen_range(0..cfg.label_pool)))
    }
}

fn edge_label(table: &mut SymbolTable, cfg: &GenConfig, rng: &mut SmallRng) -> Symbol {
    table.intern(&format!("e{}", rng.gen_range(0..cfg.edge_label_pool)))
}

/// One random certain graph: a sparse random forest plus a few extra
/// edges, with labels from the configured pools.
pub fn gen_certain(table: &mut SymbolTable, cfg: &GenConfig, seed: u64) -> Graph {
    let mut rng = rng_for(seed);
    let n = rng.gen_range(1..=cfg.max_vertices.max(1));
    let mut g = Graph::new();
    for _ in 0..n {
        let l = vertex_label(table, cfg, &mut rng);
        g.add_vertex(l);
    }
    // Spanning-forest-ish base keeps most graphs connected.
    for v in 1..n {
        if rng.gen_bool(0.8) {
            let u = rng.gen_range(0..v);
            let l = edge_label(table, cfg, &mut rng);
            g.add_edge(VertexId(u as u32), VertexId(v as u32), l);
        }
    }
    for _ in 0..rng.gen_range(0..=cfg.max_extra_edges) {
        let s = rng.gen_range(0..n) as u32;
        let d = rng.gen_range(0..n) as u32;
        if s != d {
            let l = edge_label(table, cfg, &mut rng);
            g.add_edge(VertexId(s), VertexId(d), l);
        }
    }
    g
}

/// Blur a certain graph into an uncertain one: a fraction of vertices
/// gains extra label alternatives (the original keeps the highest
/// probability), with the total world count capped at `cfg.max_worlds`.
pub fn blur(table: &mut SymbolTable, cfg: &GenConfig, base: &Graph, seed: u64) -> UncertainGraph {
    let mut rng = rng_for(seed);
    let mut g = UncertainGraph::new();
    let mut worlds: u128 = 1;
    for v in base.vertices() {
        let original = base.label(v);
        let want = if rng.gen_bool(cfg.uncertain_fraction) {
            rng.gen_range(2..=cfg.max_alternatives.max(2))
        } else {
            1
        };
        let mut alts = vec![original];
        let mut guard = 0;
        while alts.len() < want && worlds.saturating_mul(alts.len() as u128 + 1) <= cfg.max_worlds {
            guard += 1;
            if guard > 32 {
                break;
            }
            let cand = vertex_label(table, cfg, &mut rng);
            if !alts.contains(&cand) {
                alts.push(cand);
            }
        }
        worlds = worlds.saturating_mul(alts.len() as u128);
        let k = alts.len();
        let alternatives = if k == 1 {
            // Leave some mass slack occasionally: Def. 2 allows Σp < 1.
            let p = if rng.gen_bool(0.2) { rng.gen_range(0.5..1.0) } else { 1.0 };
            vec![LabelAlternative { label: alts[0], prob: p }]
        } else {
            let dominant = rng.gen_range(0.4..0.8);
            let rest = (1.0 - dominant) / (k - 1) as f64;
            alts.iter()
                .enumerate()
                .map(|(i, &label)| LabelAlternative {
                    label,
                    prob: if i == 0 { dominant } else { rest },
                })
                .collect()
        };
        g.add_vertex(UncertainVertex { alternatives });
    }
    for e in base.edges() {
        g.add_edge(e.src, e.dst, e.label);
    }
    g
}

/// One random uncertain graph.
pub fn gen_uncertain(table: &mut SymbolTable, cfg: &GenConfig, seed: u64) -> UncertainGraph {
    let base = gen_certain(table, cfg, derive_seed(seed, 1));
    blur(table, cfg, &base, derive_seed(seed, 2))
}

/// A near-threshold pair: a certain query `q` plus an uncertain graph `g`
/// derived from `q` by at most `cfg.perturbation` edits (label
/// substitutions, edge deletions, edge insertions) and then blurred. The
/// exact GED of `(q, pw(g))` lands within a few units of zero, so τ
/// values around the CSS bound exercise both sides of every filter.
pub fn near_pair(table: &mut SymbolTable, cfg: &GenConfig, seed: u64) -> (Graph, UncertainGraph) {
    let q = gen_certain(table, cfg, derive_seed(seed, 1));
    let mut rng = rng_for(derive_seed(seed, 2));
    // Re-build q mutably to apply perturbations.
    let mut labels: Vec<Symbol> = q.vertex_labels().to_vec();
    let mut edges: Vec<(u32, u32, Symbol)> =
        q.edges().iter().map(|e| (e.src.0, e.dst.0, e.label)).collect();
    let edits = rng.gen_range(0..=cfg.perturbation);
    for _ in 0..edits {
        match rng.gen_range(0..3u8) {
            0 => {
                let v = rng.gen_range(0..labels.len());
                labels[v] = vertex_label(table, cfg, &mut rng);
            }
            1 if !edges.is_empty() => {
                let i = rng.gen_range(0..edges.len());
                edges.swap_remove(i);
            }
            _ if labels.len() >= 2 => {
                let s = rng.gen_range(0..labels.len()) as u32;
                let d = rng.gen_range(0..labels.len()) as u32;
                if s != d {
                    let l = edge_label(table, cfg, &mut rng);
                    edges.push((s, d, l));
                }
            }
            _ => {}
        }
    }
    let mut base = Graph::new();
    for &l in &labels {
        base.add_vertex(l);
    }
    for &(s, d, l) in &edges {
        base.add_edge(VertexId(s), VertexId(d), l);
    }
    let g = blur(table, cfg, &base, derive_seed(seed, 3));
    (q, g)
}

/// A full join workload: `count` certain queries and `count` uncertain
/// graphs. The diagonal pairs are near-threshold (derived by
/// perturbation); the rest are independent random graphs, so joins have
/// both dense matches and clean rejections.
pub fn workload(
    table: &mut SymbolTable,
    cfg: &GenConfig,
    count: usize,
    seed: u64,
) -> (Vec<Graph>, Vec<UncertainGraph>) {
    let mut d = Vec::with_capacity(count);
    let mut u = Vec::with_capacity(count);
    for i in 0..count {
        let s = derive_seed(seed, i as u64);
        if i % 2 == 0 {
            let (q, g) = near_pair(table, cfg, s);
            d.push(q);
            u.push(g);
        } else {
            d.push(gen_certain(table, cfg, derive_seed(s, 10)));
            u.push(gen_uncertain(table, cfg, derive_seed(s, 11)));
        }
    }
    (d, u)
}

/// The canonical seeded Q/A dataset for serving-layer conformance tests
/// (restart and compaction answer equivalence): a thin, deterministic
/// wrapper over the QALD-like workload generator.
pub fn qa_dataset(seed: u64, questions: usize, distractors: usize) -> Dataset {
    qald_like(&DatasetConfig { questions, distractors, max_relations: 3, seed })
}

/// Which synthetic family a [`SyntheticSpec`] draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyntheticFamily {
    /// Erdős–Rényi random graphs.
    Er,
    /// Scale-free graphs (preferential attachment).
    Sf,
    /// AIDS-like small labeled molecule graphs.
    Aids,
}

/// A fully-seeded synthetic dataset specification: family + seed +
/// [`RandomGraphConfig`]. This is the single construction path for the
/// experiment binaries (`exp_fig12` … `exp_table2`) and the conformance
/// runner's synthetic sweeps — the boilerplate of pairing a
/// `SymbolTable`, a seeded RNG and a generator call lives here once.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSpec {
    /// Generator family.
    pub family: SyntheticFamily,
    /// RNG seed.
    pub seed: u64,
    /// Shape parameters.
    pub config: RandomGraphConfig,
}

impl SyntheticSpec {
    /// ER spec with the given seed and config.
    pub fn er(seed: u64, config: RandomGraphConfig) -> Self {
        Self { family: SyntheticFamily::Er, seed, config }
    }

    /// SF spec with the given seed and config.
    pub fn sf(seed: u64, config: RandomGraphConfig) -> Self {
        Self { family: SyntheticFamily::Sf, seed, config }
    }

    /// AIDS-like spec with the given seed and config.
    pub fn aids(seed: u64, config: RandomGraphConfig) -> Self {
        Self { family: SyntheticFamily::Aids, seed, config }
    }

    /// Generate the dataset into `table`.
    pub fn generate(&self, table: &mut SymbolTable) -> (Vec<Graph>, Vec<UncertainGraph>) {
        let mut rng = rng_for(self.seed);
        match self.family {
            SyntheticFamily::Er => erdos_renyi(table, &self.config, &mut rng),
            SyntheticFamily::Sf => scale_free(table, &self.config, &mut rng),
            SyntheticFamily::Aids => aids_like(table, &self.config, &mut rng),
        }
    }

    /// Generate the dataset together with a fresh symbol table.
    pub fn generate_fresh(&self) -> (SymbolTable, Vec<Graph>, Vec<UncertainGraph>) {
        let mut table = SymbolTable::new();
        let (d, u) = self.generate(&mut table);
        (table, d, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let mut t1 = SymbolTable::new();
        let mut t2 = SymbolTable::new();
        let cfg = GenConfig::default();
        for seed in [0u64, 7, 42, 1 << 40] {
            let a = gen_certain(&mut t1, &cfg, seed);
            let b = gen_certain(&mut t2, &cfg, seed);
            assert_eq!(a, b, "seed {seed}");
            let (qa, ga) = near_pair(&mut t1, &cfg, seed);
            let (qb, gb) = near_pair(&mut t2, &cfg, seed);
            assert_eq!(qa, qb);
            assert_eq!(ga, gb);
        }
    }

    #[test]
    fn world_count_respects_cap() {
        let mut t = SymbolTable::new();
        let cfg = GenConfig::default();
        for seed in 0..50u64 {
            let g = gen_uncertain(&mut t, &cfg, seed);
            assert!(g.world_count() <= cfg.max_worlds, "seed {seed}: {}", g.world_count());
            assert!(g.vertex_count() >= 1);
        }
    }

    #[test]
    fn near_pairs_are_actually_near() {
        // Most diagonal pairs should survive the CSS filter at small τ —
        // that is the whole point of boundary biasing.
        let mut t = SymbolTable::new();
        let cfg = GenConfig::default();
        let mut close = 0;
        let total = 40;
        for seed in 0..total {
            let (q, g) = near_pair(&mut t, &cfg, seed);
            if uqsj_ged::lb_ged_css_uncertain(&t, &q, &g) <= 3 {
                close += 1;
            }
        }
        assert!(close * 2 >= total, "only {close}/{total} pairs near the boundary");
    }

    #[test]
    fn synthetic_spec_matches_direct_generation() {
        let cfg = RandomGraphConfig { count: 6, vertices: 8, edges: 10, ..Default::default() };
        let (_, d1, u1) = SyntheticSpec::er(12, cfg).generate_fresh();
        let mut table = SymbolTable::new();
        let mut rng = rng_for(12);
        let (d2, u2) = erdos_renyi(&mut table, &cfg, &mut rng);
        assert_eq!(d1, d2);
        assert_eq!(u1, u2);
    }
}
