//! Differential and metamorphic oracle for BGP evaluation: the leapfrog
//! triejoin ([`uqsj_rdf::lftj`]) against the retained nested-loop
//! reference ([`uqsj_rdf::bgp::reference`]) on seeded random patterns.
//!
//! The generator produces the shapes where worst-case-optimal and
//! pairwise join strategies actually diverge — stars, paths, triangles,
//! 4-cycles, and unconstrained random patterns (occasionally with
//! predicate variables and repeated variables) over small synthetic KBs
//! with hub skew. Every case is a pure function of its sub-seed, so a
//! printed violation replays exactly.
//!
//! Beyond result equality, each case exercises the metamorphic relations
//! (pattern-order permutation, variable renaming, monotonicity under
//! triple insertion) for **both** evaluators, tracks the cardinality
//! estimator's q-error, and accumulates planner-vs-greedy seek totals
//! for the runner's aggregate ordering check.

use crate::gen::rng_for;
use crate::report::ConformanceReport;
use rand::seq::SliceRandom;
use rand::Rng;
use uqsj_rdf::bgp::{self, BgpEval};
use uqsj_rdf::plan::{greedy_order, q_error};
use uqsj_rdf::{lftj, Bindings, TripleStore};
use uqsj_sparql::{SparqlQuery, Term, Triple};

/// A q-error above this (×1, not ×100) is a violation even in the
/// lenient conformance sanity check: on stores of a few hundred triples
/// the estimator has no business being four orders of magnitude off.
pub const QERROR_SANITY_BOUND: f64 = 4096.0;

/// Shape and size of generated KBs and patterns.
#[derive(Clone, Copy, Debug)]
pub struct BgpGenConfig {
    /// Entity pool size.
    pub entities: usize,
    /// Predicate pool size.
    pub predicates: usize,
    /// Triples per generated KB.
    pub triples: usize,
}

impl BgpGenConfig {
    /// The per-push quick profile.
    pub fn quick() -> Self {
        Self { entities: 24, predicates: 6, triples: 160 }
    }

    /// The scheduled deep profile.
    pub fn deep() -> Self {
        Self { entities: 60, predicates: 8, triples: 600 }
    }
}

/// A generated KB as raw string triples — kept as data (not a built
/// store) so the monotonicity relation can rebuild extended stores.
pub type Kb = Vec<(String, String, String)>;

/// Generate a synthetic KB: uniform subject/object picks with hub skew
/// (a fifth of the triples attach to the first three entities), single
/// shared relation `p0` overrepresented so cyclic patterns have matches.
pub fn gen_kb(cfg: &BgpGenConfig, seed: u64) -> Kb {
    let mut rng = rng_for(seed);
    let mut kb = Vec::with_capacity(cfg.triples);
    for i in 0..cfg.triples {
        let hub = i % 5 == 0;
        let s = if hub {
            rng.gen_range(0..3.min(cfg.entities))
        } else {
            rng.gen_range(0..cfg.entities)
        };
        // p0 carries a third of the edges: enough density for triangles.
        let p = if i % 3 == 0 { 0 } else { rng.gen_range(0..cfg.predicates) };
        let o = rng.gen_range(0..cfg.entities);
        kb.push((format!("e{s}"), format!("q{p}"), format!("e{o}")));
    }
    kb
}

/// Build an indexed store from a KB.
pub fn build_store(kb: &Kb) -> TripleStore {
    let mut store = TripleStore::new();
    for (s, p, o) in kb {
        store.insert(s, p, o);
    }
    store.ensure_indexes();
    store
}

/// Generate one query over the KB. Shapes rotate star / path / triangle /
/// 4-cycle / random with the case index folded into the seed.
pub fn gen_query(kb: &Kb, seed: u64) -> SparqlQuery {
    let mut rng = rng_for(seed);
    let pick = |rng: &mut rand::rngs::SmallRng| kb[rng.gen_range(0..kb.len())].clone();
    let var = |name: &str| Term::Var(name.to_string());
    let iri = |name: &str| Term::Iri(name.to_string());
    let triple = |s: Term, p: Term, o: Term| Triple { subject: s, predicate: p, object: o };

    let shape = rng.gen_range(0..5u8);
    let triples = match shape {
        // Star: one center, 2–3 constant-predicate arms, objects mixed
        // constant/variable.
        0 => {
            let arms = rng.gen_range(2..=3);
            (0..arms)
                .map(|i| {
                    let (_, p, o) = pick(&mut rng);
                    let obj = if rng.gen_bool(0.5) { iri(&o) } else { var(&format!("o{i}")) };
                    triple(var("x"), iri(&p), obj)
                })
                .collect()
        }
        // Path: ?a p ?b . ?b q ?c (sometimes extended to length 3).
        1 => {
            let names = ["a", "b", "c", "d"];
            let len = rng.gen_range(2..=3);
            (0..len)
                .map(|i| {
                    let (_, p, _) = pick(&mut rng);
                    triple(var(names[i]), iri(&p), var(names[i + 1]))
                })
                .collect()
        }
        // Triangle on the dense predicate.
        2 => {
            let (_, p, _) = pick(&mut rng);
            let p = if rng.gen_bool(0.7) { "q0".to_string() } else { p };
            vec![
                triple(var("a"), iri(&p), var("b")),
                triple(var("b"), iri(&p), var("c")),
                triple(var("c"), iri(&p), var("a")),
            ]
        }
        // 4-cycle with independent predicates.
        3 => {
            let names = ["a", "b", "c", "d", "a"];
            (0..4)
                .map(|i| {
                    let (_, p, _) = pick(&mut rng);
                    triple(var(names[i]), iri(&p), var(names[i + 1]))
                })
                .collect()
        }
        // Random: 1–3 patterns over {x, y, z}, constants sampled from
        // real triples, occasional predicate variables and repeated
        // variables within one triple.
        _ => {
            let vars = ["x", "y", "z"];
            let n = rng.gen_range(1..=3);
            (0..n)
                .map(|_| {
                    let (s, p, o) = pick(&mut rng);
                    let subject = if rng.gen_bool(0.6) {
                        var(vars[rng.gen_range(0..3usize)])
                    } else {
                        iri(&s)
                    };
                    let predicate = if rng.gen_bool(0.15) {
                        var(vars[rng.gen_range(0..3usize)])
                    } else {
                        iri(&p)
                    };
                    let object = if rng.gen_bool(0.6) {
                        var(vars[rng.gen_range(0..3usize)])
                    } else {
                        iri(&o)
                    };
                    triple(subject, predicate, object)
                })
                .collect()
        }
    };
    SparqlQuery { select: vec![], triples }
}

/// Canonical form of a solution set: sorted (var, id) rows, deduplicated
/// (the reference emits one binding per derivation; duplicate triples can
/// make those repeat).
fn canon(solutions: Vec<Bindings>) -> Vec<Vec<(String, u32)>> {
    let mut rows: Vec<Vec<(String, u32)>> = solutions
        .into_iter()
        .map(|b| {
            let mut row: Vec<(String, u32)> = b.into_iter().map(|(k, v)| (k, v.0)).collect();
            row.sort();
            row
        })
        .collect();
    rows.sort();
    rows.dedup();
    rows
}

fn rename_query(query: &SparqlQuery) -> SparqlQuery {
    let rename = |t: &Term| match t {
        Term::Var(v) => Term::Var(format!("{v}_rn")),
        other => other.clone(),
    };
    SparqlQuery {
        select: query.select.iter().map(|v| format!("{v}_rn")).collect(),
        triples: query
            .triples
            .iter()
            .map(|t| Triple {
                subject: rename(&t.subject),
                predicate: rename(&t.predicate),
                object: rename(&t.object),
            })
            .collect(),
    }
}

fn unrename(rows: Vec<Vec<(String, u32)>>) -> Vec<Vec<(String, u32)>> {
    rows.into_iter()
        .map(|row| {
            row.into_iter()
                .map(|(k, v)| (k.strip_suffix("_rn").unwrap_or(&k).to_string(), v))
                .collect()
        })
        .collect()
}

/// Run every BGP check for one generated case. `extension_seed` drives
/// the monotonicity relation's extra triples.
pub fn check_bgp_case(
    kb: &Kb,
    store: &TripleStore,
    query: &SparqlQuery,
    sub: u64,
    report: &mut ConformanceReport,
) {
    report.bgp_patterns += 1;

    // 1. Differential oracle: lftj ≡ reference as solution sets, and the
    //    projected `evaluate` rows bit-for-bit.
    let (lftj_sols, stats) = lftj::solutions_stats(store, query);
    let reference_sols = bgp::reference::solutions(store, query);
    let lftj_canon = canon(lftj_sols);
    let reference_canon = canon(reference_sols);
    report.bgp_rows += lftj_canon.len() as u64;
    if lftj_canon != reference_canon {
        report.violation(
            "bgp_lftj_eq_reference",
            sub,
            format!(
                "lftj returned {} rows, reference {} for {}",
                lftj_canon.len(),
                reference_canon.len(),
                query
            ),
        );
        return; // downstream relations would only repeat the disagreement
    }
    let rows_lftj = bgp::evaluate_with(store, query, BgpEval::Lftj);
    let rows_reference = bgp::evaluate_with(store, query, BgpEval::Reference);
    if rows_lftj != rows_reference {
        report.violation(
            "bgp_lftj_eq_reference",
            sub,
            format!(
                "projected rows diverge ({} vs {}) for {}",
                rows_lftj.len(),
                rows_reference.len(),
                query
            ),
        );
        return;
    }

    // 2. Estimator sanity: the summary-based estimate must stay within a
    //    generous multiplicative band of the true cardinality. Empty
    //    results are exempt — no summary statistic can prove a join
    //    empty, and overestimating one only makes the planner cautious.
    let qe = q_error(stats.estimated_rows, stats.rows as f64);
    if stats.rows > 0 {
        report.bgp_qerror_x100_max = report.bgp_qerror_x100_max.max((qe * 100.0).ceil() as u64);
    }
    if stats.rows > 0 && qe > QERROR_SANITY_BOUND {
        report.violation(
            "bgp_estimator",
            sub,
            format!(
                "q-error {qe:.1} (estimated {:.1}, actual {}) for {}",
                stats.estimated_rows, stats.rows, query
            ),
        );
    }

    // 3. Planner-vs-greedy seeks, accumulated for the runner's aggregate
    //    ordering check (per-query inversions are fine; a systematic
    //    regression is not).
    report.bgp_planner_seeks += stats.seeks;
    let greedy = greedy_order(store, query);
    let (greedy_sols, greedy_stats) = lftj::solutions_with_order(store, query, &greedy);
    report.bgp_greedy_seeks += greedy_stats.seeks;
    if canon(greedy_sols) != lftj_canon {
        report.violation(
            "bgp_order_independence",
            sub,
            format!("results change under the greedy order for {query}"),
        );
    }

    // 4. Metamorphic: pattern-order permutation invariance.
    let mut rng = rng_for(sub ^ 0x9e3779b97f4a7c15);
    let mut permuted = query.clone();
    permuted.triples.shuffle(&mut rng);
    for eval in [BgpEval::Lftj, BgpEval::Reference] {
        report.bgp_metamorphic += 1;
        if canon(bgp::solutions_with(store, &permuted, eval)) != lftj_canon {
            report.violation(
                "bgp_permutation_invariance",
                sub,
                format!("{} results change under pattern reordering for {query}", eval.label()),
            );
        }
    }

    // 5. Metamorphic: variable renaming invariance (modulo the rename).
    let renamed = rename_query(query);
    for eval in [BgpEval::Lftj, BgpEval::Reference] {
        report.bgp_metamorphic += 1;
        if unrename(canon(bgp::solutions_with(store, &renamed, eval))) != lftj_canon {
            report.violation(
                "bgp_rename_invariance",
                sub,
                format!("{} results change under variable renaming for {query}", eval.label()),
            );
        }
    }

    // 6. Metamorphic: monotonicity — adding triples can only grow the
    //    solution set (BGPs are monotone queries).
    let mut extended_kb = kb.clone();
    for _ in 0..8 {
        let i = rng.gen_range(0..kb.len());
        let j = rng.gen_range(0..kb.len());
        extended_kb.push((kb[i].0.clone(), kb[j].1.clone(), kb[j].2.clone()));
    }
    let extended = build_store(&extended_kb);
    for eval in [BgpEval::Lftj, BgpEval::Reference] {
        report.bgp_metamorphic += 1;
        let after = canon(bgp::solutions_with(&extended, query_in(&extended, query), eval));
        let before = canon_in(&extended, store, &lftj_canon);
        if !before.iter().all(|row| after.binary_search(row).is_ok()) {
            report.violation(
                "bgp_monotonicity",
                sub,
                format!("{} lost solutions after inserting triples for {query}", eval.label()),
            );
        }
    }
}

/// The query itself is store-independent; this exists to keep call sites
/// explicit that evaluation happens against the *extended* store.
fn query_in<'q>(_store: &TripleStore, query: &'q SparqlQuery) -> &'q SparqlQuery {
    query
}

/// Re-express canonical rows (term ids of `from`) in `to`'s dictionary.
/// Terms present in `from` are always present in `to` (it was built from
/// a superset KB).
fn canon_in(
    to: &TripleStore,
    from: &TripleStore,
    rows: &[Vec<(String, u32)>],
) -> Vec<Vec<(String, u32)>> {
    let mut out: Vec<Vec<(String, u32)>> = rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|(k, v)| {
                    let term = from.dict.decode(uqsj_rdf::TermId(*v));
                    (k.clone(), to.dict.get(term).expect("superset dictionary").0)
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let cfg = BgpGenConfig::quick();
        let a = gen_kb(&cfg, 7);
        let b = gen_kb(&cfg, 7);
        assert_eq!(a, b);
        let store = build_store(&a);
        assert_eq!(gen_query(&a, 3), gen_query(&a, 3));
        assert!(store.len() == cfg.triples);
    }

    #[test]
    fn all_shapes_pass_on_a_seeded_store() {
        let cfg = BgpGenConfig::quick();
        let kb = gen_kb(&cfg, 11);
        let store = build_store(&kb);
        let mut report = ConformanceReport::default();
        for i in 0..15u64 {
            let q = gen_query(&kb, 1000 + i);
            check_bgp_case(&kb, &store, &q, 1000 + i, &mut report);
        }
        assert!(report.passed(), "{report}");
        assert_eq!(report.bgp_patterns, 15);
        assert!(report.bgp_metamorphic >= 15 * 6);
    }
}
