//! Metamorphic invariance checks.
//!
//! Where the [`crate::oracle`] layer compares two implementations on one
//! input, this layer compares one implementation on two *equivalent*
//! inputs. GED and `SimP_τ` are defined up to label identity and graph
//! isomorphism, so they must be invariant under:
//!
//! * **label renaming** — a bijection on non-wildcard labels (vertex and
//!   edge), applied consistently to both sides of a pair;
//! * **insertion-order permutation** — shuffling the order vertices and
//!   edges were added in (the vertex-id relabeling it induces is an
//!   isomorphism);
//!
//! and monotone in the two thresholds:
//!
//! * `SimP_τ` is non-decreasing in τ (more worlds qualify);
//! * a pair passing at α must pass at every α′ ≤ α.
//!
//! Each relation is checked on the exact evaluators, so a failure here
//! means a genuine semantics bug, not filter slack.

use crate::report::ConformanceReport;
use rand::rngs::SmallRng;
use rand::Rng;
use uqsj_ged::GedEngine;
use uqsj_graph::{Graph, Symbol, SymbolTable, UncertainGraph, UncertainVertex, VertexId};
use uqsj_uncertain::prob::verify_simp_with;

/// Tolerance when the transformed input changes float accumulation order.
const PROB_EPS: f64 = 1e-9;

fn shuffled(n: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order
}

/// Collect every distinct symbol used by the pair, in first-use order.
fn used_symbols(q: &Graph, g: &UncertainGraph) -> Vec<Symbol> {
    let mut seen = Vec::new();
    let push = |s: Symbol, seen: &mut Vec<Symbol>| {
        if !seen.contains(&s) {
            seen.push(s);
        }
    };
    for &l in q.vertex_labels() {
        push(l, &mut seen);
    }
    for e in q.edges() {
        push(e.label, &mut seen);
    }
    for v in g.vertices() {
        for a in &v.alternatives {
            push(a.label, &mut seen);
        }
    }
    for e in g.edges() {
        push(e.label, &mut seen);
    }
    seen
}

/// Apply a random label bijection to both graphs. Non-wildcard symbols map
/// to fresh, pairwise-distinct symbols (the `seed` keeps names unique per
/// call, so the map is injective even against earlier renames in the same
/// table); wildcards keep their identity, since `?x` matching everything
/// is part of the semantics, not of the label alphabet.
pub fn rename_labels(
    table: &mut SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    seed: u64,
    rng: &mut SmallRng,
) -> (Graph, UncertainGraph) {
    let sources = used_symbols(q, g);
    let order = shuffled(sources.len(), rng);
    let mut map: Vec<(Symbol, Symbol)> = Vec::with_capacity(sources.len());
    for (slot, &src_idx) in order.iter().enumerate() {
        let src = sources[src_idx];
        let dst =
            if table.is_wildcard(src) { src } else { table.intern(&format!("ren{seed}_{slot}")) };
        map.push((src, dst));
    }
    let rename = |s: Symbol| map.iter().find(|(from, _)| *from == s).expect("mapped symbol").1;

    let mut q2 = Graph::new();
    for &l in q.vertex_labels() {
        q2.add_vertex(rename(l));
    }
    for e in q.edges() {
        q2.add_edge(e.src, e.dst, rename(e.label));
    }
    let mut g2 = UncertainGraph::new();
    for v in g.vertices() {
        let alternatives = v
            .alternatives
            .iter()
            .map(|a| uqsj_graph::LabelAlternative { label: rename(a.label), prob: a.prob })
            .collect();
        g2.add_vertex(UncertainVertex { alternatives });
    }
    for e in g.edges() {
        g2.add_edge(e.src, e.dst, rename(e.label));
    }
    (q2, g2)
}

/// Rebuild both graphs with vertex and edge insertion orders shuffled
/// independently. The induced vertex-id relabeling is an isomorphism, so
/// every exact quantity must be preserved.
pub fn permute_insertion_order(
    q: &Graph,
    g: &UncertainGraph,
    rng: &mut SmallRng,
) -> (Graph, UncertainGraph) {
    let qn = q.vertex_count();
    let qorder = shuffled(qn, rng);
    let mut qpos = vec![0u32; qn];
    let mut q2 = Graph::new();
    for (new, &old) in qorder.iter().enumerate() {
        qpos[old] = new as u32;
        q2.add_vertex(q.vertex_labels()[old]);
    }
    let qedges = shuffled(q.edges().len(), rng);
    for &i in &qedges {
        let e = &q.edges()[i];
        q2.add_edge(VertexId(qpos[e.src.index()]), VertexId(qpos[e.dst.index()]), e.label);
    }

    let gn = g.vertex_count();
    let gorder = shuffled(gn, rng);
    let mut gpos = vec![0u32; gn];
    let mut g2 = UncertainGraph::new();
    for (new, &old) in gorder.iter().enumerate() {
        gpos[old] = new as u32;
        g2.add_vertex(g.vertices()[old].clone());
    }
    let gedges = shuffled(g.edges().len(), rng);
    for &i in &gedges {
        let e = &g.edges()[i];
        g2.add_edge(VertexId(gpos[e.src.index()]), VertexId(gpos[e.dst.index()]), e.label);
    }
    (q2, g2)
}

/// Run every metamorphic relation on `(q, g)`, recording violations into
/// `report`. `seed` is the pair's replay seed; `rng` drives the random
/// bijections/permutations and is itself derived from that seed by the
/// caller.
pub fn check_metamorphic(
    engine: &mut GedEngine,
    table: &mut SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    seed: u64,
    rng: &mut SmallRng,
    report: &mut ConformanceReport,
) {
    const TAUS: [u32; 4] = [0, 1, 2, 4];
    let exact: Vec<f64> = TAUS
        .iter()
        .map(|&tau| verify_simp_with(engine, table, q, g, tau, f64::INFINITY).prob)
        .collect();

    // Monotone in τ.
    for w in exact.windows(2) {
        report.metamorphic_checks += 1;
        if w[1] + PROB_EPS < w[0] {
            report.violation(
                "monotone_tau",
                seed,
                format!("SimP decreased with τ: {} then {}", w[0], w[1]),
            );
        }
    }

    // Monotone in α: passing at a high α implies passing at any lower α.
    for (&tau, &p) in TAUS.iter().zip(&exact) {
        let hi = (p + 0.01).clamp(0.02, 1.0);
        let lo = hi / 2.0;
        // Skip α values inside the float guard band around the exact
        // probability — the verdict there is legitimately order-dependent.
        if (p - hi).abs() < 1e-6 || (p - lo).abs() < 1e-6 {
            continue;
        }
        report.metamorphic_checks += 1;
        let pass_hi = verify_simp_with(engine, table, q, g, tau, hi).passed;
        let pass_lo = verify_simp_with(engine, table, q, g, tau, lo).passed;
        if pass_hi && !pass_lo {
            report.violation(
                "monotone_alpha",
                seed,
                format!("τ={tau}: passed at α={hi} but failed at α={lo}"),
            );
        }
    }

    // Invariance under label renaming (same enumeration order, so the
    // probabilities are bit-identical sums — but keep the tolerance to
    // stay robust to future evaluator reorderings).
    let (qr, gr) = rename_labels(table, q, g, seed, rng);
    for (&tau, &p) in TAUS.iter().zip(&exact) {
        report.metamorphic_checks += 1;
        let renamed = verify_simp_with(engine, table, &qr, &gr, tau, f64::INFINITY).prob;
        if (renamed - p).abs() > PROB_EPS {
            report.violation(
                "rename_invariance",
                seed,
                format!("τ={tau}: SimP {p} became {renamed} after label renaming"),
            );
        }
    }

    // Invariance under insertion-order permutation.
    let (qp, gp) = permute_insertion_order(q, g, rng);
    for (&tau, &p) in TAUS.iter().zip(&exact) {
        report.metamorphic_checks += 1;
        let permuted = verify_simp_with(engine, table, &qp, &gp, tau, f64::INFINITY).prob;
        if (permuted - p).abs() > PROB_EPS {
            report.violation(
                "permutation_invariance",
                seed,
                format!("τ={tau}: SimP {p} became {permuted} after insertion-order permutation"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{near_pair, rng_for, GenConfig};
    use uqsj_ged::reference::ged_reference;

    #[test]
    fn transforms_preserve_shape() {
        let mut table = SymbolTable::new();
        let cfg = GenConfig::default();
        let mut rng = rng_for(9);
        for seed in 0..10u64 {
            let (q, g) = near_pair(&mut table, &cfg, seed);
            let (qr, gr) = rename_labels(&mut table, &q, &g, seed, &mut rng);
            assert_eq!(qr.vertex_count(), q.vertex_count());
            assert_eq!(gr.edges().len(), g.edges().len());
            let (qp, gp) = permute_insertion_order(&q, &g, &mut rng);
            assert_eq!(qp.vertex_count(), q.vertex_count());
            assert_eq!(gp.vertices().len(), g.vertices().len());
        }
    }

    #[test]
    fn ged_invariant_under_both_transforms() {
        let mut table = SymbolTable::new();
        let cfg = GenConfig::default();
        let mut rng = rng_for(11);
        for seed in 0..10u64 {
            let q = crate::gen::gen_certain(&mut table, &cfg, seed);
            let g = crate::gen::gen_certain(&mut table, &cfg, seed + 1000);
            let d0 = ged_reference(&table, &q, &g).distance;
            let blurred = crate::gen::blur(
                &mut table,
                &GenConfig { uncertain_fraction: 0.0, ..cfg },
                &g,
                seed,
            );
            let (qr, gr) = rename_labels(&mut table, &q, &blurred, seed, &mut rng);
            let world = gr.possible_worlds().next().expect("one world").graph;
            // The single world of the un-blurred graph is g itself (up to
            // the rename), so the distance must be preserved.
            assert_eq!(ged_reference(&table, &qr, &world).distance, d0, "seed {seed}");
        }
    }
}
