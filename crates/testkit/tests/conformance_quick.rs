//! The cross-crate conformance suite, quick profile — the same run CI
//! executes on every push and `uqsj-cli conformance` exposes on demand.

use uqsj_testkit::{run_conformance, ConformanceConfig};

/// Zero violations, and the coverage counters prove the run actually
/// exercised all seven lower bounds, both SimP evaluators, the sampling
/// tier, all six join drivers, and both cascade-plan oracles (shuffled
/// and adaptive) — an accidentally-skipped oracle fails here even if
/// nothing is wrong with the code under test.
#[test]
fn quick_profile_passes_with_full_coverage() {
    let report = run_conformance(&ConformanceConfig::quick(42));
    assert!(report.passed(), "{report}");

    let expected_bounds = ["Size", "LM", "CSS", "CStar", "Path", "Pars", "SEGOS"];
    assert_eq!(report.bound_checks.len(), expected_bounds.len(), "{:?}", report.bound_checks);
    for name in expected_bounds {
        assert!(
            report.bound_checks.get(name).copied().unwrap_or(0) > 0,
            "bound {name} never checked: {:?}",
            report.bound_checks
        );
    }

    assert!(report.simp_flat > 0, "flat SimP evaluator never exercised");
    assert!(report.simp_grouped > 0, "grouped SimP evaluator never exercised");

    let expected_joins = [
        "css_only",
        "simj",
        "simj_opt",
        "parallel",
        "indexed",
        "auto_tier",
        "shuffled_cascade",
        "adaptive_cascade",
    ];
    assert_eq!(report.join_runs.len(), expected_joins.len(), "{:?}", report.join_runs);
    for name in expected_joins {
        assert!(
            report.join_runs.get(name).copied().unwrap_or(0) > 0,
            "join variant {name} never run: {:?}",
            report.join_runs
        );
    }
    // The acceptance bar for cascade soundness: at least 20 distinct
    // randomized plans proven result-identical per conformance run.
    assert!(
        report.join_runs.get("shuffled_cascade").copied().unwrap_or(0) >= 20,
        "fewer than 20 shuffled cascade plans exercised: {:?}",
        report.join_runs
    );

    assert!(report.worlds > 0 && report.engine_checks > 0 && report.metamorphic_checks > 0);
    assert!(report.sample_trials > 0, "sampling-tier oracle never exercised");
}

/// Different base seeds generate different workloads but the suite stays
/// green — a smoke-level stand-in for the deep fuzz loop.
#[test]
fn alternate_seeds_pass() {
    for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
        let mut cfg = ConformanceConfig::quick(seed);
        cfg.pairs = 4;
        let report = run_conformance(&cfg);
        assert!(report.passed(), "seed {seed}: {report}");
    }
}
