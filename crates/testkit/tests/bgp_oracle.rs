//! The BGP differential oracle as a standalone CI gate: ≥ 200 seeded
//! patterns through `check_bgp_case` with zero disagreements, plus
//! stricter estimator-accuracy and planner-order assertions than the
//! lenient in-run sanity bounds.

use uqsj_rdf::lftj;
use uqsj_rdf::plan::{greedy_order, plan, q_error};
use uqsj_testkit::bgp::{build_store, check_bgp_case, gen_kb, gen_query, BgpGenConfig};
use uqsj_testkit::gen::derive_seed;
use uqsj_testkit::ConformanceReport;

/// The quick-gate oracle: 240 seeded patterns (20 KBs × 12 queries, all
/// five shapes), every check in [`check_bgp_case`] — lftj ≡ reference,
/// permutation/rename/monotonicity, estimator sanity — must hold.
#[test]
fn quick_gate_runs_240_patterns_with_zero_disagreements() {
    let cfg = BgpGenConfig::quick();
    let mut report = ConformanceReport::default();
    let base = 0xB6F0_0001u64;
    for kb_round in 0..20u64 {
        let kb = gen_kb(&cfg, derive_seed(base, kb_round));
        let store = build_store(&kb);
        for q in 0..12u64 {
            let sub = derive_seed(base, 1000 * kb_round + q);
            let query = gen_query(&kb, sub);
            check_bgp_case(&kb, &store, &query, sub, &mut report);
        }
    }
    assert_eq!(report.bgp_patterns, 240);
    assert!(report.passed(), "{report}");
    assert!(report.bgp_rows > 0, "oracle never produced a solution row");
    // Every case that got past the differential check ran all six
    // metamorphic relations (two evaluators × three relations).
    assert!(report.bgp_metamorphic >= 6 * 200, "{report}");
}

/// On the generator families the summary estimator must stay well inside
/// the lenient sanity bound: stars and paths with constant predicates are
/// exactly the shapes characteristic sets were built for.
#[test]
fn estimator_q_error_is_bounded_on_generator_families() {
    let cfg = BgpGenConfig::quick();
    let mut worst: f64 = 1.0;
    let mut measured = 0u32;
    for kb_round in 0..6u64 {
        let kb = gen_kb(&cfg, derive_seed(0xE57, kb_round));
        let store = build_store(&kb);
        for q in 0..24u64 {
            let query = gen_query(&kb, derive_seed(0xE57_000 + kb_round, q));
            let (sols, stats) = lftj::solutions_stats(&store, &query);
            // Only judge estimable, non-empty cases: predicate variables
            // fall back to raw scan bounds, and no summary statistic can
            // prove a join empty — both are covered by the lenient
            // sanity check instead.
            if !stats.estimated_rows.is_finite() || sols.is_empty() {
                continue;
            }
            measured += 1;
            worst = worst.max(q_error(stats.estimated_rows, sols.len() as f64));
        }
    }
    assert!(measured >= 100, "too few estimable cases: {measured}");
    assert!(worst <= 512.0, "worst q-error {worst:.1} on the generator families");
}

/// The planner's variable order must not systematically degrade trie
/// seeks vs. the greedy one-step-lookahead baseline, and must agree with
/// it on results for every case.
#[test]
fn planner_order_never_degrades_seeks_vs_greedy() {
    let cfg = BgpGenConfig::quick();
    let (mut planner_seeks, mut greedy_seeks) = (0u64, 0u64);
    for kb_round in 0..6u64 {
        let kb = gen_kb(&cfg, derive_seed(0x9EED, kb_round));
        let store = build_store(&kb);
        for q in 0..24u64 {
            let query = gen_query(&kb, derive_seed(0x9EED_000 + kb_round, q));
            let (_, stats) = lftj::solutions_stats(&store, &query);
            planner_seeks += stats.seeks;
            let order = greedy_order(&store, &query);
            let (_, gstats) = lftj::solutions_with_order(&store, &query, &order);
            greedy_seeks += gstats.seeks;
            // The plan must cover exactly the query's variables.
            let p = plan(&store, &query);
            let mut planned = p.order.clone();
            planned.sort();
            assert_eq!(planned, query.variables(), "plan order loses variables for {query}");
        }
    }
    // Aggregate, with slack for individual inversions: the planner may
    // lose a few races but not the workload.
    assert!(
        planner_seeks <= greedy_seeks + greedy_seeks / 4 + 1_000,
        "planner spent {planner_seeks} seeks vs greedy {greedy_seeks}"
    );
}
