//! Property-test driver for the metamorphic relations: rather than the
//! runner's fixed pair mix, this samples generator seeds and τ values and
//! asserts each relation directly, so a failure names the exact seed.

use proptest::prelude::*;
use uqsj_ged::reference::ged_reference;
use uqsj_ged::GedEngine;
use uqsj_graph::SymbolTable;
use uqsj_testkit::gen::{derive_seed, gen_certain, near_pair, rng_for, GenConfig};
use uqsj_testkit::metamorphic::{permute_insertion_order, rename_labels};
use uqsj_uncertain::prob::verify_simp_with;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact SimP is invariant under a random label bijection and a random
    /// insertion-order permutation of the same pair.
    #[test]
    fn simp_invariant_under_equivalence(seed in 0u64..1 << 48, tau in 0u32..4) {
        let cfg = GenConfig::default();
        let mut table = SymbolTable::new();
        let mut engine = GedEngine::new();
        let (q, g) = near_pair(&mut table, &cfg, seed);
        let base = verify_simp_with(&mut engine, &table, &q, &g, tau, f64::INFINITY).prob;

        let mut rng = rng_for(derive_seed(seed, 99));
        let (qr, gr) = rename_labels(&mut table, &q, &g, seed, &mut rng);
        let renamed = verify_simp_with(&mut engine, &table, &qr, &gr, tau, f64::INFINITY).prob;
        prop_assert!((renamed - base).abs() < 1e-9, "rename: {base} -> {renamed} (seed {seed})");

        let (qp, gp) = permute_insertion_order(&q, &g, &mut rng);
        let permuted = verify_simp_with(&mut engine, &table, &qp, &gp, tau, f64::INFINITY).prob;
        prop_assert!((permuted - base).abs() < 1e-9, "permute: {base} -> {permuted} (seed {seed})");
    }

    /// Certain-certain GED is invariant under insertion-order permutation.
    #[test]
    fn ged_invariant_under_permutation(seed in 0u64..1 << 48) {
        let cfg = GenConfig::default();
        let mut table = SymbolTable::new();
        let q = gen_certain(&mut table, &cfg, seed);
        let g = gen_certain(&mut table, &cfg, derive_seed(seed, 1));
        let blurred = uqsj_testkit::gen::blur(
            &mut table,
            &GenConfig { uncertain_fraction: 0.0, ..cfg },
            &g,
            derive_seed(seed, 2),
        );
        let base = ged_reference(&table, &q, &g).distance;
        let mut rng = rng_for(derive_seed(seed, 3));
        let (qp, gp) = permute_insertion_order(&q, &blurred, &mut rng);
        let world = gp.possible_worlds().next().expect("single world").graph;
        prop_assert_eq!(ged_reference(&table, &qp, &world).distance, base, "seed {}", seed);
    }

    /// SimP is non-decreasing in τ on sampled pairs.
    #[test]
    fn simp_monotone_in_tau(seed in 0u64..1 << 48) {
        let cfg = GenConfig::default();
        let mut table = SymbolTable::new();
        let mut engine = GedEngine::new();
        let (q, g) = near_pair(&mut table, &cfg, seed);
        let mut prev = 0.0f64;
        for tau in 0..5u32 {
            let p = verify_simp_with(&mut engine, &table, &q, &g, tau, f64::INFINITY).prob;
            prop_assert!(p + 1e-9 >= prev, "τ={} dropped {} -> {} (seed {})", tau, prev, p, seed);
            prev = p;
        }
    }
}
