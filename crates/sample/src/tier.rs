//! Adaptive verification-tier dispatch: exact enumeration for small world
//! spaces, Monte-Carlo sampling beyond.
//!
//! Exact verification cost grows with `world_count()`; the sampled cost is
//! bounded by the `(ε, δ)` draw budget regardless of the world count. The
//! dispatcher therefore routes each candidate pair by comparing its world
//! count against a threshold — including counts that *saturated* during
//! the `u128` product (graphs with hundreds of uncertain vertices), which
//! are by definition enumeration-infeasible and always sample.

use crate::sampler::{sample_simp_with, SampleParams, StopReason};
use uqsj_ged::astar::GedResult;
use uqsj_ged::engine::GedEngine;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};
use uqsj_uncertain::groups::PossibleWorldGroup;
use uqsj_uncertain::{verify_simp_groups_with, verify_simp_with};

/// How `SimP ≥ α` decisions are made.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimpMode {
    /// Always enumerate every possible world (the paper's Algorithm 1).
    Exact,
    /// Always sample, whatever the world count.
    Sample,
    /// Enumerate below [`SimpPolicy::auto_world_threshold`] worlds,
    /// sample at or above it.
    Auto,
}

/// The verification-tier policy carried by join parameters.
#[derive(Clone, Copy, Debug)]
pub struct SimpPolicy {
    /// Tier selection mode.
    pub mode: SimpMode,
    /// Indifference half-width of the sampled decision.
    pub epsilon: f64,
    /// Error probability of the sampled decision outside ±ε.
    pub delta: f64,
    /// Base seed; each pair derives its own sub-seed so parallel drivers
    /// stay order-independent and every decision replays from this value.
    pub seed: u64,
    /// `Auto` samples when `world_count()` meets or exceeds this.
    pub auto_world_threshold: u128,
}

impl SimpPolicy {
    /// Default crossover for [`SimpMode::Auto`] — matches the world-count
    /// ceiling up to which the exact verifier is willing to collect and
    /// sort worlds for its early-exit ordering.
    pub const DEFAULT_AUTO_THRESHOLD: u128 = 4096;

    /// Exact-only verification (the historical behaviour).
    pub fn exact() -> Self {
        Self {
            mode: SimpMode::Exact,
            epsilon: 0.05,
            delta: 0.05,
            seed: 42,
            auto_world_threshold: Self::DEFAULT_AUTO_THRESHOLD,
        }
    }

    /// Always-sample policy with the given guarantee.
    pub fn sample(epsilon: f64, delta: f64, seed: u64) -> Self {
        Self { mode: SimpMode::Sample, epsilon, delta, seed, ..Self::exact() }
    }

    /// Adaptive policy with the given guarantee.
    pub fn auto(epsilon: f64, delta: f64, seed: u64) -> Self {
        Self { mode: SimpMode::Auto, epsilon, delta, seed, ..Self::exact() }
    }

    /// Override the auto crossover threshold.
    pub fn with_threshold(self, auto_world_threshold: u128) -> Self {
        Self { auto_world_threshold, ..self }
    }

    /// The sampler parameters this policy implies.
    pub fn sample_params(&self) -> SampleParams {
        SampleParams::new(self.epsilon, self.delta)
    }
}

/// Which tier verified a pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Exact enumeration.
    Exact,
    /// Monte-Carlo sampling.
    Sample,
}

/// Route one pair given its (possibly saturated) world count. A count of
/// `u128::MAX` means the product saturated — enumeration-infeasible, so
/// `Auto` always samples it.
pub fn choose_tier(policy: &SimpPolicy, world_count: u128) -> Tier {
    match policy.mode {
        SimpMode::Exact => Tier::Exact,
        SimpMode::Sample => Tier::Sample,
        SimpMode::Auto => {
            if world_count >= policy.auto_world_threshold {
                Tier::Sample
            } else {
                Tier::Exact
            }
        }
    }
}

/// Outcome of a tier-dispatched `SimP ≥ α` decision; a superset of the
/// exact tier's `VerifyOutcome` fields.
#[derive(Clone, Debug)]
pub struct TierOutcome {
    /// `SimP_τ(q, g)` — exact (possibly early-exited) on the exact tier,
    /// the certified point estimate on the sampled tier.
    pub prob: f64,
    /// The decision `SimP_τ(q, g) ≥ α`; exact on the exact tier, correct
    /// with probability ≥ 1−δ outside ±ε on the sampled tier.
    pub passed: bool,
    /// Mapping of the most probable qualifying world seen, if any.
    pub best_mapping: Option<GedResult>,
    /// Probability of the world behind `best_mapping`.
    pub best_world_prob: f64,
    /// Worlds on which the τ-bounded decision ran.
    pub worlds_verified: usize,
    /// Which tier decided the pair.
    pub tier: Tier,
    /// Worlds drawn by the sampler (0 on the exact tier).
    pub worlds_sampled: u64,
    /// False only when the sampler's draw budget ran out.
    pub guaranteed: bool,
    /// Why the decision terminated: always
    /// [`StopReason::ExactOnly`] on the exact tier, the sampler's
    /// confidence-sequence stopping rule on the sampled tier.
    pub stop: StopReason,
    /// The pair's replay seed (meaningful on the sampled tier).
    pub seed: u64,
}

/// Verify one candidate pair through the tier the policy selects, on a
/// caller-owned engine. `groups` is an optional possible-world partition
/// (reused by both tiers when present); `pair_seed` should come from
/// [`crate::seed::pair_seed`] so results are independent of driver order.
///
/// A non-finite `alpha` (exact-probability request) always takes the
/// exact tier — the sampler has no meaningful answer for it.
#[allow(clippy::too_many_arguments)] // the join loop's full verification context
pub fn verify_pair_with(
    engine: &mut GedEngine,
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    alpha: f64,
    groups: Option<&[PossibleWorldGroup]>,
    policy: &SimpPolicy,
    pair_seed: u64,
) -> TierOutcome {
    let obs = crate::obs::sample_obs();
    let tier = if alpha.is_finite() { choose_tier(policy, g.world_count()) } else { Tier::Exact };
    match tier {
        Tier::Exact => {
            obs.dispatch_exact.inc();
            let out = match groups {
                Some(parts) => verify_simp_groups_with(engine, table, q, g, tau, alpha, parts),
                None => verify_simp_with(engine, table, q, g, tau, alpha),
            };
            TierOutcome {
                prob: out.prob,
                passed: out.passed,
                best_mapping: out.best_mapping,
                best_world_prob: out.best_world_prob,
                worlds_verified: out.worlds_verified,
                tier: Tier::Exact,
                worlds_sampled: 0,
                guaranteed: true,
                stop: StopReason::ExactOnly,
                seed: pair_seed,
            }
        }
        Tier::Sample => {
            obs.dispatch_sample.inc();
            let out = sample_simp_with(
                engine,
                table,
                q,
                g,
                tau,
                alpha,
                groups,
                &policy.sample_params(),
                pair_seed,
            );
            debug_assert!(
                !out.passed || alpha <= 0.0 || out.best_mapping.is_some(),
                "sampled accept without a witnessing mapping"
            );
            TierOutcome {
                prob: out.estimate,
                passed: out.passed,
                best_mapping: out.best_mapping,
                best_world_prob: out.best_world_prob,
                worlds_verified: out.worlds_verified,
                tier: Tier::Sample,
                worlds_sampled: out.worlds_sampled,
                guaranteed: out.stop != StopReason::BudgetExhausted,
                stop: out.stop,
                seed: pair_seed,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::pair_seed;
    use uqsj_graph::GraphBuilder;

    fn pair(t: &mut SymbolTable) -> (Graph, UncertainGraph) {
        let mut bq = GraphBuilder::new(t);
        bq.vertex("x", "?x");
        bq.vertex("a", "Actor");
        bq.edge("x", "a", "type");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(t);
        bg.vertex("y", "?y");
        bg.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        bg.edge("y", "m", "type");
        (q, bg.into_uncertain())
    }

    #[test]
    fn auto_routes_by_world_count_and_saturation() {
        let policy = SimpPolicy::auto(0.05, 0.05, 1).with_threshold(100);
        assert_eq!(choose_tier(&policy, 1), Tier::Exact);
        assert_eq!(choose_tier(&policy, 99), Tier::Exact);
        assert_eq!(choose_tier(&policy, 100), Tier::Sample);
        // Saturated world counts are enumeration-infeasible by definition.
        assert_eq!(choose_tier(&policy, u128::MAX), Tier::Sample);
        assert_eq!(choose_tier(&SimpPolicy::exact(), u128::MAX), Tier::Exact);
        assert_eq!(choose_tier(&SimpPolicy::sample(0.05, 0.05, 1), 1), Tier::Sample);
    }

    #[test]
    fn tiers_agree_on_a_small_pair() {
        let mut t = SymbolTable::new();
        let (q, g) = pair(&mut t);
        let mut engine = GedEngine::new();
        for alpha in [0.2f64, 0.5, 0.9] {
            let exact = verify_pair_with(
                &mut engine,
                &t,
                &q,
                &g,
                0,
                alpha,
                None,
                &SimpPolicy::exact(),
                pair_seed(1, 0, 0),
            );
            let sampled = verify_pair_with(
                &mut engine,
                &t,
                &q,
                &g,
                0,
                alpha,
                None,
                &SimpPolicy::sample(0.05, 0.05, 1),
                pair_seed(1, 0, 0),
            );
            assert_eq!(exact.tier, Tier::Exact);
            assert_eq!(sampled.tier, Tier::Sample);
            assert_eq!(exact.passed, sampled.passed, "alpha={alpha}");
        }
    }

    #[test]
    fn infinite_alpha_always_takes_the_exact_tier() {
        let mut t = SymbolTable::new();
        let (q, g) = pair(&mut t);
        let mut engine = GedEngine::new();
        let out = verify_pair_with(
            &mut engine,
            &t,
            &q,
            &g,
            0,
            f64::INFINITY,
            None,
            &SimpPolicy::sample(0.05, 0.05, 1),
            7,
        );
        assert_eq!(out.tier, Tier::Exact);
        assert!((out.prob - 0.4).abs() < 1e-9);
    }
}
