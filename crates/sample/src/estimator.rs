//! Anytime-valid confidence sequence for a Bernoulli mean.
//!
//! The sampler draws i.i.d. indicator variables `X_n = 1{ged(q, pw_n) ≤ τ}`
//! and must be allowed to *peek after every draw* without invalidating its
//! error guarantee. A fixed-n Hoeffding interval does not survive optional
//! stopping, so the budget δ is spread over all sample sizes with the
//! union bound `δ_n = δ / (n(n+1))` (which telescopes to exactly δ), and
//! at each `n` the interval is the tighter of
//!
//! * the Hoeffding radius `sqrt(ln(4/δ_n) / 2n)`, and
//! * the empirical-Bernstein radius (Maurer & Pontil 2009)
//!   `sqrt(2 V̂_n ln(8/δ_n) / n) + 7 ln(8/δ_n) / (3(n−1))`,
//!
//! each run at half the per-n budget so their minimum is simultaneously
//! valid. Empirical Bernstein wins decisively when the pass probability is
//! near 0 or 1 — the common case for α-threshold decisions after the
//! filter cascade — because the sample variance `V̂_n ≈ p̂(1−p̂)` collapses.
//!
//! With probability at least `1 − δ`, **every** interval
//! `[mean − radius, mean + radius]` produced over the whole stream
//! contains the true mean; any stopping rule built on those intervals
//! inherits the guarantee.

/// Running state of the confidence sequence over a Bernoulli stream.
#[derive(Clone, Debug)]
pub struct ConfidenceSequence {
    delta: f64,
    n: u64,
    successes: u64,
}

impl ConfidenceSequence {
    /// A fresh sequence with total error budget `delta ∈ (0, 1)`.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0, 1), got {delta}");
        Self { delta, n: 0, successes: 0 }
    }

    /// Fold in one observation.
    pub fn observe(&mut self, success: bool) {
        self.n += 1;
        self.successes += u64::from(success);
    }

    /// Number of observations so far.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Empirical mean `p̂_n` (0 before the first observation).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.successes as f64 / self.n as f64
        }
    }

    /// `ln(n(n+1)/δ)` — the log inverse of the per-n budget.
    fn log_inv_budget(&self) -> f64 {
        let n = self.n as f64;
        (n * (n + 1.0) / self.delta).ln()
    }

    /// Two-sided radius valid *simultaneously for all n* at level δ; the
    /// mean is a probability, so the radius is clamped to 1.
    pub fn radius(&self) -> f64 {
        if self.n == 0 {
            return 1.0;
        }
        let n = self.n as f64;
        let hoeffding = ((4.0f64.ln() + self.log_inv_budget()) / (2.0 * n)).sqrt();
        let bernstein = if self.n >= 2 {
            let l = 8.0f64.ln() + self.log_inv_budget();
            let p = self.mean();
            // Unbiased sample variance of a Bernoulli sample.
            let v = (n / (n - 1.0)) * p * (1.0 - p);
            (2.0 * v * l / n).sqrt() + 7.0 * l / (3.0 * (n - 1.0))
        } else {
            f64::INFINITY
        };
        hoeffding.min(bernstein).min(1.0)
    }

    /// Smallest `n` at which the Hoeffding arm of the radius is guaranteed
    /// to have shrunk to `epsilon` — a worst-case sample budget for a
    /// stopping rule that terminates once `radius() ≤ epsilon`. (The
    /// Bernstein arm can only stop earlier.)
    pub fn budget(epsilon: f64, delta: f64) -> u64 {
        assert!(epsilon > 0.0, "epsilon must be positive, got {epsilon}");
        let radius_at = |n: f64| ((4.0f64.ln() + (n * (n + 1.0) / delta).ln()) / (2.0 * n)).sqrt();
        let mut hi = 64u64;
        while radius_at(hi as f64) > epsilon {
            hi = hi.saturating_mul(2);
            if hi >= 1 << 40 {
                return hi; // pathological (ε, δ); caller caps anyway
            }
        }
        let mut lo = hi / 2;
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if radius_at(mid as f64) > epsilon {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::{derive_seed, rng_for};
    use rand::Rng;

    #[test]
    fn radius_shrinks_with_n() {
        let mut cs = ConfidenceSequence::new(0.05);
        let mut rng = rng_for(1);
        let mut at = vec![cs.radius()];
        for checkpoint in [10u64, 100, 2000] {
            while cs.n() < checkpoint {
                cs.observe(rng.gen_bool(0.3));
            }
            at.push(cs.radius());
        }
        for w in at.windows(2) {
            assert!(w[1] < w[0], "radius did not shrink across checkpoints: {at:?}");
        }
        assert!(at[3] < 0.08, "radius after 2000 draws: {}", at[3]);
    }

    #[test]
    fn bernstein_beats_hoeffding_on_skewed_streams() {
        // At p = 0.02 the variance term is tiny; the combined radius must
        // be well below the Hoeffding-only radius.
        let mut cs = ConfidenceSequence::new(0.05);
        let mut rng = rng_for(2);
        for _ in 0..4000 {
            cs.observe(rng.gen_bool(0.02));
        }
        let n = cs.n() as f64;
        let hoeffding = ((4.0f64.ln() + (n * (n + 1.0) / 0.05).ln()) / (2.0 * n)).sqrt();
        assert!(cs.radius() < 0.6 * hoeffding, "{} vs {}", cs.radius(), hoeffding);
    }

    #[test]
    fn coverage_holds_under_continuous_peeking() {
        // Empirical check of the anytime guarantee: streams where the
        // interval *ever* excludes the true mean must be rarer than δ
        // (with a generous margin — the bound is conservative).
        let delta = 0.1;
        let mut bad_streams = 0;
        let trials = 200;
        for t in 0..trials {
            let p = match t % 4 {
                0 => 0.05,
                1 => 0.3,
                2 => 0.7,
                _ => 0.95,
            };
            let mut rng = rng_for(derive_seed(99, t));
            let mut cs = ConfidenceSequence::new(delta);
            let mut violated = false;
            for _ in 0..600 {
                cs.observe(rng.gen_bool(p));
                if (cs.mean() - p).abs() > cs.radius() {
                    violated = true;
                    break;
                }
            }
            bad_streams += u32::from(violated);
        }
        assert!(
            f64::from(bad_streams) <= delta * trials as f64,
            "{bad_streams}/{trials} streams broke coverage at delta={delta}"
        );
    }

    #[test]
    fn budget_is_monotone_and_sufficient() {
        let b1 = ConfidenceSequence::budget(0.1, 0.05);
        let b2 = ConfidenceSequence::budget(0.05, 0.05);
        let b3 = ConfidenceSequence::budget(0.05, 0.01);
        assert!(b1 < b2, "tighter epsilon needs more samples");
        assert!(b2 <= b3, "tighter delta needs more samples");
        // After `budget` all-failure observations the radius has resolved.
        let mut cs = ConfidenceSequence::new(0.05);
        for _ in 0..b2 {
            cs.observe(false);
        }
        assert!(cs.radius() <= 0.05, "radius {} after {} draws", cs.radius(), b2);
    }
}
