//! Monte-Carlo SimP verification tier with `(ε, δ)` guarantees and
//! adaptive tier dispatch.
//!
//! Exact `SimP_τ(q, g)` verification enumerates every possible world —
//! exponential in the number of uncertain vertices, which caps how large
//! an NLQ graph the join can verify at all. This crate trades exactness
//! for a *bounded, tunable* error: worlds are drawn i.i.d. from the
//! vertex-label distributions, verified with the same label-patching
//! [`uqsj_uncertain::WorldVerifier`] fast path the exact tier uses, and
//! the `SimP ≥ α` decision is made by a sequential early-stopping rule
//! built on an anytime-valid confidence sequence. Outside the `±ε`
//! indifference band around α the decision is correct with probability at
//! least `1 − δ`; inside it either answer is acceptable by construction.
//!
//! * [`seed`] — the workspace-wide splitmix64 sub-seed convention; every
//!   sampled decision replays from a printed seed.
//! * [`estimator`] — the Hoeffding / empirical-Bernstein confidence
//!   sequence that survives peeking after every draw.
//! * [`sampler`] — stratified drawing over the possible-world groups:
//!   pruned strata contribute exactly 0, enumerable strata fold in
//!   exactly, and only the residual mass is sampled.
//! * [`tier`] — the [`SimpMode::Auto`] dispatcher routing each candidate
//!   pair to exact enumeration or sampling by its (saturation-aware)
//!   `world_count()`.

pub mod estimator;
mod obs;
pub mod sampler;
pub mod seed;
pub mod tier;

pub use estimator::ConfidenceSequence;
pub use sampler::{sample_simp_with, SampleOutcome, SampleParams, StopReason, MAX_DRAW_CAP};
pub use seed::{derive_seed, pair_seed, rng_for};
pub use tier::{choose_tier, verify_pair_with, SimpMode, SimpPolicy, Tier, TierOutcome};
