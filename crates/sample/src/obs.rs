//! Metric handles for the sampling verification tier: how pairs were
//! dispatched between exact enumeration and Monte-Carlo sampling, how many
//! worlds each sampled decision drew, which stopping rule ended it, and
//! how tight the certified estimate was at the stop.
//!
//! Handles are registered once in [`uqsj_obs::global()`] and shared; every
//! per-draw update is a single striped-counter add.

pub(crate) struct SampleObs {
    /// Pairs routed to each verification tier, labelled `tier=...`.
    pub dispatch_exact: uqsj_obs::Counter,
    pub dispatch_sample: uqsj_obs::Counter,
    /// Worlds drawn by the sampler (every i.i.d. draw, memoized or not).
    pub worlds: uqsj_obs::Counter,
    /// Draws answered from the per-pair world memo without re-verifying.
    pub memo_hits: uqsj_obs::Counter,
    /// Worlds folded in exactly from pruned or enumerable strata.
    pub exact_fold_worlds: uqsj_obs::Counter,
    /// Sampled decisions by final answer, labelled `result=...`.
    pub decide_accept: uqsj_obs::Counter,
    pub decide_reject: uqsj_obs::Counter,
    /// Confidence-sequence stops before the ε-resolution budget,
    /// labelled `kind=...`.
    pub early_accept: uqsj_obs::Counter,
    pub early_reject: uqsj_obs::Counter,
    /// Decisions forced by the sample budget (no (ε,δ) certificate).
    pub budget_exhausted: uqsj_obs::Counter,
    /// Draws per sampled decision.
    pub draws: uqsj_obs::Histogram,
    /// Certified half-width of the SimP estimate at the stop, in basis
    /// points (1e-4) — the sampling analogue of an error bar.
    pub estimate_error_bp: uqsj_obs::Histogram,
}

pub(crate) fn sample_obs() -> &'static SampleObs {
    use std::sync::OnceLock;
    static OBS: OnceLock<SampleObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = uqsj_obs::global();
        let dispatch = "pairs routed to each SimP verification tier";
        let decide = "sampled SimP >= alpha decisions by final answer";
        let early = "confidence-sequence stops before the epsilon-resolution budget";
        SampleObs {
            dispatch_exact: r.counter_with(
                "uqsj_sample_tier_dispatch_total",
                &[("tier", "exact")],
                dispatch,
            ),
            dispatch_sample: r.counter_with(
                "uqsj_sample_tier_dispatch_total",
                &[("tier", "sample")],
                dispatch,
            ),
            worlds: r.counter("uqsj_sample_worlds_total", "possible worlds drawn by the sampler"),
            memo_hits: r.counter(
                "uqsj_sample_memo_hits_total",
                "sampled draws answered from the per-pair world memo",
            ),
            exact_fold_worlds: r.counter(
                "uqsj_sample_exact_fold_worlds_total",
                "worlds folded in exactly from enumerable strata",
            ),
            decide_accept: r.counter_with(
                "uqsj_sample_decisions_total",
                &[("result", "accept")],
                decide,
            ),
            decide_reject: r.counter_with(
                "uqsj_sample_decisions_total",
                &[("result", "reject")],
                decide,
            ),
            early_accept: r.counter_with(
                "uqsj_sample_early_stop_total",
                &[("kind", "accept")],
                early,
            ),
            early_reject: r.counter_with(
                "uqsj_sample_early_stop_total",
                &[("kind", "reject")],
                early,
            ),
            budget_exhausted: r.counter(
                "uqsj_sample_budget_exhausted_total",
                "sampled decisions forced by the draw budget without a certificate",
            ),
            draws: r.histogram("uqsj_sample_draws", "worlds drawn per sampled decision"),
            estimate_error_bp: r.histogram(
                "uqsj_sample_estimate_error_bp",
                "certified SimP half-width at the stop, in basis points",
            ),
        }
    })
}
