//! Shared seeded-RNG helpers (splitmix64 sub-seed derivation).
//!
//! This is the single home of the seed-derivation convention the whole
//! workspace follows: every randomized component — the conformance
//! generators in `uqsj-testkit` and the Monte-Carlo sampler here — is a
//! pure function of a `u64` seed, and independent sub-streams are carved
//! out of a base seed with [`derive_seed`]. A printed seed therefore
//! replays any sampled decision or generated workload exactly, on any
//! thread schedule.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Deterministic RNG for a derived sub-seed.
pub fn rng_for(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Mix a stream index into a base seed (splitmix64 finalizer), so each
/// derived object — a generated graph, a sampled verification — has an
/// independent, replayable sub-seed.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sub-seed for one `(q, g)` pair of a join, independent of the order in
/// which a (possibly parallel) driver reaches the pair. The two indices
/// are packed into one stream index; pairs with either index above
/// `2^32` alias, which no realistic join reaches.
pub fn pair_seed(base: u64, q_index: usize, g_index: usize) -> u64 {
    derive_seed(base, ((g_index as u64) << 32) ^ (q_index as u64 & 0xffff_ffff))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic_and_spreads() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        // Nearby indices land far apart (finalizer avalanche).
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 8, "weak mixing: {a:x} vs {b:x}");
    }

    #[test]
    fn rng_replays_from_seed() {
        let mut r1 = rng_for(derive_seed(7, 3));
        let mut r2 = rng_for(derive_seed(7, 3));
        for _ in 0..16 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn pair_seed_distinguishes_transposed_pairs() {
        assert_ne!(pair_seed(42, 1, 2), pair_seed(42, 2, 1));
        assert_eq!(pair_seed(42, 5, 9), pair_seed(42, 5, 9));
    }
}
