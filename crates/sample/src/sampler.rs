//! Stratified Monte-Carlo estimation of `SimP_τ(q, g)` and the sequential
//! `SimP ≥ α` decision.
//!
//! Exact verification enumerates every possible world — exponential in the
//! number of uncertain vertices. The sampler instead draws worlds i.i.d.
//! from the vertex-label distributions and verifies each with the same
//! label-patching [`WorldVerifier`] fast path the exact tier uses (no
//! per-world graph materialization), deciding `SimP_τ(q, g) ≥ α` through
//! the anytime-valid confidence sequence of [`crate::estimator`].
//!
//! # Stratification
//!
//! The possible-world groups of `uqsj-uncertain` (Sec. 6.2) partition the
//! worlds; the sampler exploits the partition three ways:
//!
//! * groups whose restricted CSS bound exceeds τ contribute **exactly 0**
//!   and are dropped (no variance spent on certain rejections);
//! * groups with at most [`SampleParams::exact_stratum_worlds`] worlds are
//!   enumerated **exactly** and their qualifying mass is folded into the
//!   estimate with zero variance;
//! * only the remaining mass `M` is sampled: a stratum is picked with
//!   probability proportional to its mass and a world drawn vertex by
//!   vertex with the conditional probabilities `p_i / mass(v)`, so the
//!   scaled indicator `M · X` is an unbiased estimator of the sampled
//!   contribution. Def. 2 mass slack (`Σ p < 1`) is handled by the same
//!   scaling — no draw is wasted on "no world".
//!
//! # Guarantee
//!
//! With probability at least `1 − δ` the decision is correct whenever
//! `|SimP_τ(q, g) − α| > ε`; inside the `±ε` band either answer may be
//! returned (the indifference region of the sequential test). Every
//! decision is a pure function of the seed — replaying a printed seed
//! reproduces it draw for draw.

use crate::estimator::ConfidenceSequence;
use crate::obs::sample_obs;
use crate::seed::rng_for;
use rand::Rng;
use std::collections::HashMap;
use uqsj_ged::astar::GedResult;
use uqsj_ged::bounds::css::lb_ged_css_certain;
use uqsj_ged::engine::GedEngine;
use uqsj_graph::{Graph, Symbol, SymbolTable, UncertainGraph};
use uqsj_uncertain::groups::PossibleWorldGroup;
use uqsj_uncertain::verifier::WorldVerifier;

/// Hard ceiling on draws per decision, protecting against pathological
/// `(ε, δ)` choices; a decision forced by it reports
/// [`StopReason::BudgetExhausted`].
pub const MAX_DRAW_CAP: u64 = 10_000_000;

/// Per-pair memo of draw → verdict; duplicate draws of mid-sized world
/// spaces skip the τ-bounded search entirely. Bounded so adversarial
/// world spaces cannot balloon memory.
const MEMO_CAP: usize = 1 << 16;

/// Tuning knobs of the sampled `SimP ≥ α` decision.
#[derive(Clone, Copy, Debug)]
pub struct SampleParams {
    /// Half-width of the indifference region around α.
    pub epsilon: f64,
    /// Probability that the decision is wrong outside the ±ε band.
    pub delta: f64,
    /// Draw budget; `0` derives the worst-case budget from `(ε, δ)`
    /// (capped at [`MAX_DRAW_CAP`]).
    pub max_samples: u64,
    /// Strata with at most this many worlds are enumerated exactly.
    pub exact_stratum_worlds: u128,
}

impl Default for SampleParams {
    fn default() -> Self {
        Self { epsilon: 0.05, delta: 0.05, max_samples: 0, exact_stratum_worlds: 16 }
    }
}

impl SampleParams {
    /// Params with the given guarantee and defaults elsewhere.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        Self { epsilon, delta, ..Self::default() }
    }
}

/// Why the sampled decision terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Exact strata alone settled the threshold — nothing was sampled.
    ExactOnly,
    /// The confidence interval rose entirely above the threshold.
    CertainAccept,
    /// The confidence interval fell entirely below the threshold.
    CertainReject,
    /// The interval shrank to ±ε; the point estimate decided.
    Resolved,
    /// The draw budget ran out before resolution — the answer is the
    /// point estimate *without* the (ε,δ) certificate.
    BudgetExhausted,
}

impl StopReason {
    /// Stable snake_case label, used by metric labels, EXPLAIN reports,
    /// and the join layer's name-keyed stop-reason counters.
    pub fn label(self) -> &'static str {
        match self {
            StopReason::ExactOnly => "exact_only",
            StopReason::CertainAccept => "certain_accept",
            StopReason::CertainReject => "certain_reject",
            StopReason::Resolved => "resolved",
            StopReason::BudgetExhausted => "budget_exhausted",
        }
    }
}

/// Result of one sampled (or exactly folded) `SimP ≥ α` decision.
#[derive(Clone, Debug)]
pub struct SampleOutcome {
    /// The decision `SimP_τ(q, g) ≥ α`, correct with probability ≥ 1−δ
    /// outside the ±ε indifference band.
    pub passed: bool,
    /// Unbiased point estimate of `SimP_τ(q, g)` (exact part + scaled
    /// sample mean).
    pub estimate: f64,
    /// Anytime-valid confidence interval on `SimP` at the stop.
    pub lo: f64,
    /// Upper end of the interval.
    pub hi: f64,
    /// Worlds drawn by the sampler (memoized draws included).
    pub worlds_sampled: u64,
    /// Worlds on which the τ-bounded decision actually ran (exact strata
    /// plus non-memoized draws surviving the CSS filter).
    pub worlds_verified: usize,
    /// Mapping of the most probable qualifying world seen, if any —
    /// present on every accept with `α > 0`.
    pub best_mapping: Option<GedResult>,
    /// Probability of the world behind `best_mapping`.
    pub best_world_prob: f64,
    /// Which rule terminated the decision.
    pub stop: StopReason,
    /// Whether the (ε,δ) certificate holds (false only on
    /// [`StopReason::BudgetExhausted`]).
    pub guaranteed: bool,
    /// The seed that replays this decision exactly.
    pub seed: u64,
}

/// One sampling stratum: the group's label sets plus per-vertex masses
/// and the stratum's total (unconditional) mass.
struct Stratum {
    label_sets: Vec<Vec<(Symbol, f64)>>,
    vertex_mass: Vec<f64>,
    mass: f64,
}

/// Decide `SimP_τ(q, g) ≥ alpha` by stratified sequential sampling on a
/// caller-owned engine. `groups` is the possible-world partition to
/// stratify over (e.g. the one `ub_simp_grouped` already computed);
/// `None` samples the full world space as a single stratum. `alpha` must
/// be finite — exact-probability requests belong to the exact tier.
#[allow(clippy::too_many_arguments)] // mirrors verify_simp_groups_with + policy
pub fn sample_simp_with(
    engine: &mut GedEngine,
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    tau: u32,
    alpha: f64,
    groups: Option<&[PossibleWorldGroup]>,
    params: &SampleParams,
    seed: u64,
) -> SampleOutcome {
    assert!(alpha.is_finite(), "sampling needs a finite alpha; use the exact tier for SimP itself");
    let obs = sample_obs();

    // Def. 3: a vertex-less graph has zero possible worlds, so SimP = 0.
    if g.vertex_count() == 0 {
        obs.draws.observe(0);
        obs.decide_reject.inc();
        return exact_only_outcome(0.0, 0.0, alpha, None, 0.0, 0, seed);
    }

    let full;
    let strata_source: &[PossibleWorldGroup] = match groups {
        Some(parts) => parts,
        None => {
            full = [PossibleWorldGroup::full(g)];
            &full
        }
    };

    // Phase 1: fold what can be folded exactly.
    let mut exact_base = 0.0f64;
    let mut best_mapping = None;
    let mut best_world_prob = 0.0f64;
    let mut worlds_verified = 0usize;
    let mut verifier = WorldVerifier::new(table, q, g);
    let mut strata: Vec<Stratum> = Vec::new();
    for grp in strata_source {
        if grp.lb_ged(table, q, g) > tau {
            continue; // contributes exactly 0
        }
        if grp.world_count() <= params.exact_stratum_worlds {
            for (labels, prob) in grp.worlds() {
                obs.exact_fold_worlds.inc();
                verifier.set_labels(&labels);
                if lb_ged_css_certain(table, q, verifier.world_graph()) <= tau {
                    worlds_verified += 1;
                    if let Some(result) = verifier.within_tau(engine, tau) {
                        exact_base += prob;
                        if prob > best_world_prob {
                            best_world_prob = prob;
                            best_mapping = Some(result);
                        }
                    }
                }
            }
        } else {
            let vertex_mass: Vec<f64> =
                grp.label_sets.iter().map(|s| s.iter().map(|(_, p)| p).sum()).collect();
            let mass: f64 = vertex_mass.iter().product();
            if mass > 0.0 {
                strata.push(Stratum { label_sets: grp.label_sets.clone(), vertex_mass, mass });
            }
        }
    }
    let sampled_mass: f64 = strata.iter().map(|s| s.mass).sum();

    // Exact mass alone may already settle the threshold in either
    // direction — every sampled world's probability is bounded by the
    // remaining mass.
    if exact_base >= alpha || exact_base + sampled_mass < alpha {
        let passed = exact_base >= alpha;
        obs.draws.observe(0);
        if passed {
            obs.decide_accept.inc();
        } else {
            obs.decide_reject.inc();
        }
        return exact_only_outcome(
            exact_base,
            sampled_mass,
            alpha,
            best_mapping,
            best_world_prob,
            worlds_verified,
            seed,
        );
    }

    // Phase 2: sequential sampling of the residual mass. The threshold
    // and tolerance move to the conditional scale θ = (SimP − E)/M.
    let threshold = (alpha - exact_base) / sampled_mass;
    let eps_c = params.epsilon / sampled_mass;
    let budget = if params.max_samples > 0 {
        params.max_samples.min(MAX_DRAW_CAP)
    } else {
        ConfidenceSequence::budget(eps_c, params.delta).min(MAX_DRAW_CAP)
    };
    let mut rng = rng_for(seed);
    let mut cs = ConfidenceSequence::new(params.delta);
    let mut memo: HashMap<Vec<Symbol>, bool> = HashMap::new();
    let mut labels: Vec<Symbol> = Vec::with_capacity(g.vertex_count());
    let stop;
    loop {
        // Pick a stratum ∝ mass, then a world vertex-conditionally.
        let mut pick = rng.gen::<f64>() * sampled_mass;
        let mut chosen = strata.len() - 1;
        for (i, s) in strata.iter().enumerate() {
            if pick < s.mass {
                chosen = i;
                break;
            }
            pick -= s.mass;
        }
        let stratum = &strata[chosen];
        labels.clear();
        let mut world_prob = 1.0f64;
        for (set, &vmass) in stratum.label_sets.iter().zip(&stratum.vertex_mass) {
            let mut r = rng.gen::<f64>() * vmass;
            let mut idx = set.len() - 1;
            for (i, (_, p)) in set.iter().enumerate() {
                if r < *p {
                    idx = i;
                    break;
                }
                r -= p;
            }
            let (sym, p) = set[idx];
            labels.push(sym);
            world_prob *= p;
        }
        obs.worlds.inc();
        let pass = match memo.get(&labels) {
            Some(&cached) => {
                obs.memo_hits.inc();
                cached
            }
            None => {
                verifier.set_labels(&labels);
                let pass = if lb_ged_css_certain(table, q, verifier.world_graph()) <= tau {
                    worlds_verified += 1;
                    match verifier.within_tau(engine, tau) {
                        Some(result) => {
                            if world_prob > best_world_prob {
                                best_world_prob = world_prob;
                                best_mapping = Some(result);
                            }
                            true
                        }
                        None => false,
                    }
                } else {
                    false
                };
                if memo.len() < MEMO_CAP {
                    memo.insert(labels.clone(), pass);
                }
                pass
            }
        };
        cs.observe(pass);
        let mean = cs.mean();
        let radius = cs.radius();
        if mean - radius >= threshold {
            stop = StopReason::CertainAccept;
            break;
        }
        if mean + radius < threshold {
            stop = StopReason::CertainReject;
            break;
        }
        if radius <= eps_c {
            stop = StopReason::Resolved;
            break;
        }
        if cs.n() >= budget {
            stop = StopReason::BudgetExhausted;
            break;
        }
    }

    let mean = cs.mean();
    let radius = cs.radius();
    let passed = match stop {
        StopReason::CertainAccept => true,
        StopReason::CertainReject => false,
        _ => mean >= threshold,
    };
    match stop {
        StopReason::CertainAccept => obs.early_accept.inc(),
        StopReason::CertainReject => obs.early_reject.inc(),
        StopReason::BudgetExhausted => obs.budget_exhausted.inc(),
        _ => {}
    }
    if passed {
        obs.decide_accept.inc();
    } else {
        obs.decide_reject.inc();
    }
    obs.draws.observe(cs.n());
    obs.estimate_error_bp.observe((sampled_mass * radius * 10_000.0).round() as u64);
    SampleOutcome {
        passed,
        estimate: exact_base + sampled_mass * mean,
        lo: exact_base + sampled_mass * (mean - radius).max(0.0),
        hi: exact_base + sampled_mass * (mean + radius).min(1.0),
        worlds_sampled: cs.n(),
        worlds_verified,
        best_mapping,
        best_world_prob,
        stop,
        guaranteed: stop != StopReason::BudgetExhausted,
        seed,
    }
}

/// Outcome of a decision settled without any sampling.
fn exact_only_outcome(
    exact_base: f64,
    sampled_mass: f64,
    alpha: f64,
    best_mapping: Option<GedResult>,
    best_world_prob: f64,
    worlds_verified: usize,
    seed: u64,
) -> SampleOutcome {
    SampleOutcome {
        passed: exact_base >= alpha,
        estimate: exact_base,
        lo: exact_base,
        hi: exact_base + sampled_mass,
        worlds_sampled: 0,
        worlds_verified,
        best_mapping,
        best_world_prob,
        stop: StopReason::ExactOnly,
        guaranteed: true,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::derive_seed;
    use uqsj_graph::GraphBuilder;
    use uqsj_uncertain::similarity_probability;

    /// The paper's running example: SimP_0 = 0.4, SimP_1 = 1.0.
    fn example_pair(t: &mut SymbolTable) -> (Graph, UncertainGraph) {
        let mut bq = GraphBuilder::new(t);
        bq.vertex("x", "?x");
        bq.vertex("a", "Actor");
        bq.vertex("c", "Country");
        bq.edge("x", "a", "type");
        bq.edge("x", "c", "birthPlace");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(t);
        bg.vertex("y", "?y");
        bg.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        bg.vertex("c", "Country");
        bg.edge("y", "m", "type");
        bg.edge("y", "c", "birthPlace");
        let g = bg.into_uncertain();
        (q, g)
    }

    /// A pair with a wider world space (3 × 3 × 2 = 18 worlds) and mass
    /// slack on one vertex.
    fn wide_pair(t: &mut SymbolTable) -> (Graph, UncertainGraph) {
        let mut bq = GraphBuilder::new(t);
        bq.vertex("x", "?x");
        bq.vertex("a", "Actor");
        bq.vertex("c", "City");
        bq.edge("x", "a", "type");
        bq.edge("a", "c", "birthPlace");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(t);
        bg.uncertain_vertex("y", &[("?y", 0.6), ("Film", 0.3)]); // slack 0.1
        bg.uncertain_vertex("m", &[("NBA_Player", 0.5), ("Professor", 0.3), ("Actor", 0.2)]);
        bg.uncertain_vertex("n", &[("State", 0.4), ("City", 0.3), ("Town", 0.3)]);
        bg.edge("y", "m", "type");
        bg.edge("m", "n", "birthPlace");
        (q, bg.into_uncertain())
    }

    fn force_sampling() -> SampleParams {
        SampleParams { exact_stratum_worlds: 0, ..SampleParams::new(0.05, 0.05) }
    }

    #[test]
    fn sampled_decision_matches_exact_away_from_boundary() {
        let mut t = SymbolTable::new();
        let (q, g) = example_pair(&mut t);
        let mut engine = GedEngine::new();
        let exact = similarity_probability(&t, &q, &g, 0);
        assert!((exact - 0.4).abs() < 1e-9);
        for (i, alpha) in [0.1f64, 0.25, 0.6, 0.9].into_iter().enumerate() {
            let out = sample_simp_with(
                &mut engine,
                &t,
                &q,
                &g,
                0,
                alpha,
                None,
                &force_sampling(),
                derive_seed(7, i as u64),
            );
            assert_eq!(out.passed, exact >= alpha, "alpha={alpha}: {out:?}");
            assert!(out.guaranteed);
            assert!((out.estimate - exact).abs() < 0.12, "alpha={alpha}: {}", out.estimate);
        }
    }

    #[test]
    fn wide_pair_estimate_tracks_exact_with_slack_mass() {
        let mut t = SymbolTable::new();
        let (q, g) = wide_pair(&mut t);
        let mut engine = GedEngine::new();
        for tau in [1u32, 2] {
            let exact = similarity_probability(&t, &q, &g, tau);
            let out = sample_simp_with(
                &mut engine,
                &t,
                &q,
                &g,
                tau,
                0.5,
                None,
                &SampleParams { epsilon: 0.02, ..force_sampling() },
                derive_seed(11, u64::from(tau)),
            );
            assert!(
                (out.estimate - exact).abs() <= 0.05,
                "tau={tau}: estimate {} vs exact {exact}",
                out.estimate
            );
            assert_eq!(out.passed, exact >= 0.5, "tau={tau}");
        }
    }

    #[test]
    fn enumerable_strata_fold_exactly() {
        let mut t = SymbolTable::new();
        let (q, g) = example_pair(&mut t);
        let mut engine = GedEngine::new();
        // Default exact_stratum_worlds (16) swallows the 2-world space.
        let out =
            sample_simp_with(&mut engine, &t, &q, &g, 0, 0.3, None, &SampleParams::default(), 1);
        assert_eq!(out.stop, StopReason::ExactOnly);
        assert_eq!(out.worlds_sampled, 0);
        assert!((out.estimate - 0.4).abs() < 1e-12, "exact fold should be exact");
        assert!(out.passed);
        assert!(out.best_mapping.is_some());
    }

    #[test]
    fn accept_always_carries_a_mapping() {
        let mut t = SymbolTable::new();
        let (q, g) = wide_pair(&mut t);
        let mut engine = GedEngine::new();
        for i in 0..8u64 {
            let out = sample_simp_with(
                &mut engine,
                &t,
                &q,
                &g,
                2,
                0.3,
                None,
                &force_sampling(),
                derive_seed(23, i),
            );
            if out.passed {
                assert!(out.best_mapping.is_some(), "seed index {i}");
                assert!(out.best_world_prob > 0.0);
            }
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let mut t = SymbolTable::new();
        let (q, g) = wide_pair(&mut t);
        let mut engine = GedEngine::new();
        let run = |engine: &mut GedEngine| {
            sample_simp_with(engine, &t, &q, &g, 1, 0.5, None, &force_sampling(), 99)
        };
        let a = run(&mut engine);
        let b = run(&mut engine);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.worlds_sampled, b.worlds_sampled);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(a.stop, b.stop);
    }

    #[test]
    fn empty_graph_rejects_with_zero_worlds() {
        let t = SymbolTable::new();
        let q = Graph::new();
        let g = UncertainGraph::new();
        let mut engine = GedEngine::new();
        let out =
            sample_simp_with(&mut engine, &t, &q, &g, 10, 0.5, None, &SampleParams::default(), 3);
        assert!(!out.passed);
        assert_eq!(out.estimate, 0.0);
        assert_eq!(out.worlds_sampled, 0);
    }

    #[test]
    fn stratified_groups_agree_with_single_stratum() {
        let mut t = SymbolTable::new();
        let (q, g) = wide_pair(&mut t);
        let mut engine = GedEngine::new();
        let groups = uqsj_uncertain::partition_groups(
            &t,
            &q,
            &g,
            2,
            4,
            uqsj_uncertain::SplitHeuristic::HighestMass,
        );
        let exact = similarity_probability(&t, &q, &g, 2);
        let flat = sample_simp_with(&mut engine, &t, &q, &g, 2, 0.5, None, &force_sampling(), 5);
        let strat =
            sample_simp_with(&mut engine, &t, &q, &g, 2, 0.5, Some(&groups), &force_sampling(), 5);
        assert_eq!(flat.passed, exact >= 0.5);
        assert_eq!(strat.passed, exact >= 0.5);
        assert!((strat.estimate - exact).abs() <= 0.1, "{} vs {exact}", strat.estimate);
    }
}
