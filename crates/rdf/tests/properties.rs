//! Property tests for the triple store: index scans must agree with a
//! naive model, and BGP evaluation with a brute-force join.

use proptest::prelude::*;
use uqsj_rdf::bgp;
use uqsj_rdf::TripleStore;
use uqsj_sparql::{SparqlQuery, Term, Triple};

const SUBJECTS: [&str; 4] = ["s0", "s1", "s2", "s3"];
const PREDICATES: [&str; 3] = ["p0", "p1", "p2"];
const OBJECTS: [&str; 4] = ["o0", "o1", "s0", "s1"];

fn store_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..4, 0u8..3, 0u8..4), 0..20)
}

fn build(triples: &[(u8, u8, u8)]) -> TripleStore {
    let mut s = TripleStore::new();
    for &(a, b, c) in triples {
        s.insert(SUBJECTS[a as usize], PREDICATES[b as usize], OBJECTS[c as usize]);
    }
    s.ensure_indexes();
    s
}

proptest! {
    #[test]
    fn scans_agree_with_naive_filter(
        triples in store_strategy(),
        sq in prop::option::of(0u8..4),
        pq in prop::option::of(0u8..3),
        oq in prop::option::of(0u8..4),
    ) {
        let store = build(&triples);
        let s = sq.and_then(|i| store.dict.get(SUBJECTS[i as usize]));
        let p = pq.and_then(|i| store.dict.get(PREDICATES[i as usize]));
        let o = oq.and_then(|i| store.dict.get(OBJECTS[i as usize]));
        // If a requested constant is absent from the dictionary the naive
        // expectation is zero matches; skip those cases for the bound
        // components that failed to resolve.
        if (sq.is_some() && s.is_none()) || (pq.is_some() && p.is_none()) || (oq.is_some() && o.is_none()) {
            return Ok(());
        }
        let mut expected: Vec<(u32, u32, u32)> = triples
            .iter()
            .map(|&(a, b, c)| {
                (
                    store.dict.get(SUBJECTS[a as usize]).unwrap().0,
                    store.dict.get(PREDICATES[b as usize]).unwrap().0,
                    store.dict.get(OBJECTS[c as usize]).unwrap().0,
                )
            })
            .filter(|&(ts, tp, to)| {
                s.is_none_or(|x| x.0 == ts)
                    && p.is_none_or(|x| x.0 == tp)
                    && o.is_none_or(|x| x.0 == to)
            })
            .collect();
        expected.sort_unstable();
        let mut got: Vec<(u32, u32, u32)> = store
            .scan(s, p, o)
            .into_iter()
            .map(|(a, b, c)| (a.0, b.0, c.0))
            .collect();
        got.sort_unstable();
        // Full scan keeps duplicates; the (s,p,o)-bound case returns one
        // hit per distinct triple, so compare deduplicated sets.
        expected.dedup();
        got.dedup();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(store.count(s, p, o) > 0, !store.scan(s, p, o).is_empty());
    }

    #[test]
    fn two_pattern_bgp_agrees_with_bruteforce(
        triples in store_strategy(),
        p1 in 0u8..3,
        p2 in 0u8..3,
    ) {
        let store = build(&triples);
        // ?x p1 ?y . ?y p2 ?z
        let q = SparqlQuery {
            select: vec!["x".into(), "z".into()],
            triples: vec![
                Triple {
                    subject: Term::Var("x".into()),
                    predicate: Term::Iri(PREDICATES[p1 as usize].into()),
                    object: Term::Var("y".into()),
                },
                Triple {
                    subject: Term::Var("y".into()),
                    predicate: Term::Iri(PREDICATES[p2 as usize].into()),
                    object: Term::Var("z".into()),
                },
            ],
        };
        let got = bgp::evaluate(&store, &q);
        // Brute force over the raw triples.
        let decode = |i: u8, names: &[&str]| names[i as usize].to_owned();
        let mut expected: Vec<Vec<String>> = Vec::new();
        for &(a1, b1, c1) in &triples {
            for &(a2, b2, c2) in &triples {
                if b1 == p1 && b2 == p2 && decode(c1, &OBJECTS) == decode(a2, &SUBJECTS) {
                    expected.push(vec![decode(a1, &SUBJECTS), decode(c2, &OBJECTS)]);
                }
            }
        }
        expected.sort();
        expected.dedup();
        prop_assert_eq!(got, expected);
    }

    /// The leapfrog evaluator and the nested-loop oracle must agree as
    /// solution sets on arbitrary three-pattern queries (variables,
    /// constants, repeats — whatever the strategy produces).
    #[test]
    fn lftj_agrees_with_reference_on_random_patterns(
        triples in store_strategy(),
        pattern_picks in prop::collection::vec(
            (0u8..6, 0u8..5, 0u8..6), 1..4),
    ) {
        let store = build(&triples);
        let vars = ["x", "y", "z"];
        let term = |pick: u8, consts: &[&str]| -> Term {
            if pick < 3 {
                Term::Var(vars[pick as usize].into())
            } else {
                Term::Iri(consts[(pick - 3) as usize].into())
            }
        };
        let q = SparqlQuery {
            select: vec![],
            triples: pattern_picks
                .iter()
                .map(|&(s, p, o)| Triple {
                    subject: term(s, &SUBJECTS[..3]),
                    // Mostly constant predicates, occasionally ?x joining
                    // across positions.
                    predicate: if p == 0 {
                        Term::Var("x".into())
                    } else {
                        Term::Iri(PREDICATES[((p - 1) % 3) as usize].into())
                    },
                    object: term(o, &OBJECTS[..3]),
                })
                .collect(),
        };
        let lftj = bgp::evaluate_with(&store, &q, bgp::BgpEval::Lftj);
        let reference = bgp::evaluate_with(&store, &q, bgp::BgpEval::Reference);
        prop_assert_eq!(lftj, reference);
    }
}
