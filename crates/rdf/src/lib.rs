//! In-memory RDF triple store — the substrate standing in for
//! Jena/RDF-3x/gStore in the Q/A-with-templates stage (Sec. 2.2: "any
//! SPARQL query engine can be used to answer the SPARQL query").
//!
//! * [`dict`] — dictionary encoding of terms to dense ids.
//! * [`store`] — triple storage with SPO/POS/OSP sorted indexes and
//!   single-pattern lookup.
//! * [`bgp`] — basic-graph-pattern evaluation by selectivity-ordered
//!   index nested-loop joins, answering the SPARQL subset.
//! * [`ntriples`] — a line-based N-Triples-style loader.

pub mod bgp;
pub mod dict;
pub mod ntriples;
pub mod store;

pub use bgp::Bindings;
pub use dict::{Dictionary, TermId};
pub use store::TripleStore;
