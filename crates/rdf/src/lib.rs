//! In-memory RDF triple store — the substrate standing in for
//! Jena/RDF-3x/gStore in the Q/A-with-templates stage (Sec. 2.2: "any
//! SPARQL query engine can be used to answer the SPARQL query").
//!
//! * [`dict`] — dictionary encoding of terms to dense ids.
//! * [`store`] — triple storage with all six sorted permutation indexes,
//!   single-pattern lookup, and the graph summary statistics.
//! * [`plan`] — summary-based cardinality estimation and variable
//!   elimination ordering.
//! * [`lftj`] — leapfrog-triejoin worst-case-optimal multiway join over
//!   the sorted index tries.
//! * [`bgp`] — the evaluation entry point, dispatching between [`lftj`]
//!   and the retained nested-loop oracle [`bgp::reference`].
//! * [`ntriples`] — a line-based N-Triples-style loader.

pub mod bgp;
pub mod dict;
pub mod lftj;
pub mod ntriples;
mod obs;
pub mod plan;
pub mod store;

pub use bgp::{BgpEval, Bindings};
pub use dict::{Dictionary, TermId};
pub use store::TripleStore;
