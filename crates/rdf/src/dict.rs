//! Dictionary encoding: RDF terms (strings) to dense [`TermId`]s.

use std::collections::HashMap;
use std::fmt;

/// A dictionary-encoded RDF term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub u32);

impl TermId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional term dictionary.
#[derive(Default, Clone)]
pub struct Dictionary {
    map: HashMap<String, u32>,
    terms: Vec<String>,
}

impl Dictionary {
    /// New empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode (interning if new).
    pub fn encode(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.map.get(term) {
            return TermId(id);
        }
        let id = u32::try_from(self.terms.len()).expect("dictionary overflow");
        self.map.insert(term.to_owned(), id);
        self.terms.push(term.to_owned());
        TermId(id)
    }

    /// Look up without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.map.get(term).copied().map(TermId)
    }

    /// Decode.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this dictionary.
    pub fn decode(&self, id: TermId) -> &str {
        &self.terms[id.index()]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

impl fmt::Debug for Dictionary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Dictionary").field("len", &self.terms.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let mut d = Dictionary::new();
        let a = d.encode("Harvard_University");
        let b = d.encode("Harvard_University");
        assert_eq!(a, b);
        assert_eq!(d.decode(a), "Harvard_University");
        assert_eq!(d.len(), 1);
        assert!(d.get("missing").is_none());
    }
}
