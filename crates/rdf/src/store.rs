//! Triple storage with six sorted permutation indexes and a graph
//! summary.
//!
//! Every lookup pattern (any subset of S/P/O bound) is answered by a
//! binary-searched range scan over the best permutation ordering — the
//! classical RDF-3x layout. All **six** permutations are kept (not just
//! the three the nested-loop evaluator needed) because the leapfrog
//! triejoin in [`crate::lftj`] must, for any global variable elimination
//! order, find a trie whose level order presents a pattern's bound
//! positions as a prefix followed by the variable being joined; with six
//! orderings every (bound-set, target-position) combination has one.
//!
//! `ensure_indexes` additionally maintains the [`Summary`] — per-predicate
//! triple/distinct-subject/distinct-object counts plus characteristic
//! sets (the distinct predicate set of each subject, with multiplicity) —
//! the statistics behind [`crate::plan`]'s cardinality estimates and join
//! ordering.

use crate::dict::{Dictionary, TermId};
use std::collections::HashMap;

/// A dictionary-encoded triple.
pub type Triple = (TermId, TermId, TermId);

/// The six index orderings, named by their level order. `PERMS[i][k]` is
/// the triple component (0 = S, 1 = P, 2 = O) stored at trie level `k` of
/// permutation `i`.
pub(crate) const PERMS: [[usize; 3]; 6] = [
    [0, 1, 2], // SPO
    [0, 2, 1], // SOP
    [1, 0, 2], // PSO
    [1, 2, 0], // POS
    [2, 0, 1], // OSP
    [2, 1, 0], // OPS
];

pub(crate) const SPO: usize = 0;
pub(crate) const SOP: usize = 1;
pub(crate) const POS: usize = 3;
pub(crate) const OSP: usize = 4;

/// Component `i` of a triple.
#[inline]
pub(crate) fn at(t: Triple, i: usize) -> TermId {
    match i {
        0 => t.0,
        1 => t.1,
        _ => t.2,
    }
}

/// Reorder a triple into permutation `perm`'s level order.
#[inline]
fn permute(t: Triple, perm: [usize; 3]) -> Triple {
    (at(t, perm[0]), at(t, perm[1]), at(t, perm[2]))
}

/// Undo [`permute`]: map a permuted key back to `(s, p, o)`.
#[inline]
pub(crate) fn unpermute(k: Triple, perm: [usize; 3]) -> Triple {
    let mut out = [TermId(0); 3];
    out[perm[0]] = k.0;
    out[perm[1]] = k.1;
    out[perm[2]] = k.2;
    (out[0], out[1], out[2])
}

/// Per-predicate statistics (one row of the graph summary).
#[derive(Clone, Copy, Debug, Default)]
pub struct PredStat {
    /// Triples with this predicate (including duplicates).
    pub triples: u64,
    /// Distinct subjects appearing with this predicate.
    pub distinct_subjects: u64,
    /// Distinct objects appearing with this predicate.
    pub distinct_objects: u64,
}

impl PredStat {
    /// Mean objects per subject (`triples / distinct_subjects`), ≥ 1.
    pub fn subject_fanout(&self) -> f64 {
        if self.distinct_subjects == 0 {
            0.0
        } else {
            (self.triples as f64 / self.distinct_subjects as f64).max(1.0)
        }
    }
}

/// Characteristic sets are only collected up to this many distinct sets;
/// pathological stores beyond it fall back to per-predicate statistics.
const MAX_CHAR_SETS: usize = 4096;

/// The graph summary: the statistics [`crate::plan`] estimates
/// cardinalities from. Maintained by [`TripleStore::ensure_indexes`] in
/// one pass over the sorted indexes, so it is always consistent with
/// what [`TripleStore::scan`] would return.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Stored triples (including duplicates).
    pub triples: u64,
    /// Distinct subjects / predicates / objects over the whole store.
    pub distinct_subjects: u64,
    /// Distinct predicates.
    pub distinct_predicates: u64,
    /// Distinct objects.
    pub distinct_objects: u64,
    /// Per-predicate statistics.
    pub predicates: HashMap<TermId, PredStat>,
    /// Characteristic sets: the sorted distinct predicate set of a
    /// subject → how many subjects share exactly that set. Empty (with
    /// `char_sets_complete == false`) when the store exceeds
    /// `MAX_CHAR_SETS` (4096) distinct sets.
    pub char_sets: HashMap<Vec<TermId>, u64>,
    /// Whether `char_sets` covers every subject.
    pub char_sets_complete: bool,
}

impl Summary {
    /// Statistics for one predicate (zeros if absent).
    pub fn pred(&self, p: TermId) -> PredStat {
        self.predicates.get(&p).copied().unwrap_or_default()
    }

    /// How many subjects carry **all** of `preds` — exact when the
    /// characteristic sets are complete (sum over supersets), otherwise
    /// the per-predicate minimum (an upper bound).
    pub fn subjects_with_all(&self, preds: &[TermId]) -> u64 {
        if preds.is_empty() {
            return self.distinct_subjects;
        }
        if self.char_sets_complete {
            self.char_sets
                .iter()
                .filter(|(set, _)| preds.iter().all(|p| set.binary_search(p).is_ok()))
                .map(|(_, n)| n)
                .sum()
        } else {
            preds.iter().map(|&p| self.pred(p).distinct_subjects).min().unwrap_or(0)
        }
    }
}

/// The store: dictionary plus indexed triples. Indexes are rebuilt lazily
/// after inserts.
pub struct TripleStore {
    /// Term dictionary.
    pub dict: Dictionary,
    triples: Vec<Triple>,
    /// Six sorted permutations, indexed by [`PERMS`]; rows are stored in
    /// the permutation's own level order (use [`unpermute`] to recover
    /// `(s, p, o)`).
    perms: [Vec<Triple>; 6],
    summary: Summary,
    dirty: bool,
}

impl Default for TripleStore {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TripleStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TripleStore")
            .field("triples", &self.triples.len())
            .field("terms", &self.dict.len())
            .field("dirty", &self.dirty)
            .finish()
    }
}

impl TripleStore {
    /// New empty store.
    pub fn new() -> Self {
        Self {
            dict: Dictionary::new(),
            triples: Vec::new(),
            perms: Default::default(),
            summary: Summary::default(),
            dirty: false,
        }
    }

    /// Insert a triple of strings.
    pub fn insert(&mut self, s: &str, p: &str, o: &str) {
        let t = (self.dict.encode(s), self.dict.encode(p), self.dict.encode(o));
        self.triples.push(t);
        self.dirty = true;
    }

    /// Insert an encoded triple.
    pub fn insert_ids(&mut self, t: Triple) {
        self.triples.push(t);
        self.dirty = true;
    }

    /// Number of stored triples (including duplicates).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// The triples in insertion order (including duplicates) — the raw
    /// sequence serializers persist; no index required.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// (Re)build indexes and the graph summary if needed.
    pub fn ensure_indexes(&mut self) {
        if !self.dirty {
            return;
        }
        for (i, perm) in PERMS.iter().enumerate() {
            self.perms[i] = self.triples.iter().map(|&t| permute(t, *perm)).collect();
            self.perms[i].sort_unstable();
        }
        self.summary = self.build_summary();
        self.dirty = false;
    }

    /// One pass over the freshly sorted SPO / POS / OSP orderings.
    fn build_summary(&self) -> Summary {
        let mut summary = Summary {
            triples: self.triples.len() as u64,
            char_sets_complete: true,
            ..Summary::default()
        };
        // SPO: grouped by subject — distinct subjects, per-subject
        // characteristic set, per-predicate triple + distinct-subject
        // counts.
        let spo = &self.perms[SPO];
        let mut i = 0usize;
        while i < spo.len() {
            let s = spo[i].0;
            summary.distinct_subjects += 1;
            let mut set: Vec<TermId> = Vec::new();
            while i < spo.len() && spo[i].0 == s {
                let p = spo[i].1;
                let stat = summary.predicates.entry(p).or_default();
                stat.triples += 1;
                if set.last() != Some(&p) {
                    set.push(p);
                    stat.distinct_subjects += 1;
                }
                i += 1;
            }
            if summary.char_sets_complete {
                if summary.char_sets.len() >= MAX_CHAR_SETS && !summary.char_sets.contains_key(&set)
                {
                    summary.char_sets.clear();
                    summary.char_sets_complete = false;
                } else {
                    *summary.char_sets.entry(set).or_default() += 1;
                }
            }
        }
        // POS: grouped by (p, o) — distinct objects per predicate, and
        // distinct predicates from the group starts.
        let pos = &self.perms[POS];
        for (j, &(p, o, _)) in pos.iter().enumerate() {
            if j == 0 || pos[j - 1].0 != p {
                summary.distinct_predicates += 1;
            }
            if j == 0 || (pos[j - 1].0, pos[j - 1].1) != (p, o) {
                summary.predicates.entry(p).or_default().distinct_objects += 1;
            }
        }
        // OSP: distinct objects overall.
        let osp = &self.perms[OSP];
        for (j, &(o, _, _)) in osp.iter().enumerate() {
            if j == 0 || osp[j - 1].0 != o {
                summary.distinct_objects += 1;
            }
        }
        summary
    }

    /// The graph summary.
    ///
    /// # Panics
    /// Panics if indexes are stale (insert since last
    /// [`Self::ensure_indexes`]).
    pub fn summary(&self) -> &Summary {
        assert!(!self.dirty, "call ensure_indexes() after inserting");
        &self.summary
    }

    /// The sorted rows of permutation `perm_id` (rows are in the
    /// permutation's own level order).
    pub(crate) fn perm(&self, perm_id: usize) -> &[Triple] {
        assert!(!self.dirty, "call ensure_indexes() after inserting");
        &self.perms[perm_id]
    }

    /// All triples matching the pattern (bound components are `Some`).
    /// Results are in arbitrary order. Requires indexes to be built;
    /// builds them on the fly if the store is mutable — callers holding
    /// only `&self` must call [`Self::ensure_indexes`] first.
    ///
    /// # Panics
    /// Panics if indexes are stale (insert since last
    /// [`Self::ensure_indexes`]).
    pub fn scan(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        assert!(!self.dirty, "call ensure_indexes() after inserting");
        let (perm_id, prefix) = route(s, p, o);
        let rows = &self.perms[perm_id];
        if prefix.len() == 3 {
            let t = (prefix[0], prefix[1], prefix[2]);
            return if rows.binary_search(&t).is_ok() { vec![t] } else { Vec::new() };
        }
        let (lo, hi) = prefix_range(rows, &prefix);
        let perm = PERMS[perm_id];
        rows[lo..hi].iter().map(|&k| unpermute(k, perm)).collect()
    }

    /// Count matches for a pattern without materializing (used for join
    /// ordering by selectivity).
    pub fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        assert!(!self.dirty, "call ensure_indexes() after inserting");
        let (perm_id, prefix) = route(s, p, o);
        let rows = &self.perms[perm_id];
        if prefix.len() == 3 {
            let t = (prefix[0], prefix[1], prefix[2]);
            return usize::from(rows.binary_search(&t).is_ok());
        }
        let (lo, hi) = prefix_range(rows, &prefix);
        hi - lo
    }
}

/// Pick the permutation whose level order presents the bound components
/// as a prefix, and that prefix in level order.
fn route(s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> (usize, Vec<TermId>) {
    match (s, p, o) {
        (Some(s), Some(p), Some(o)) => (SPO, vec![s, p, o]),
        (Some(s), Some(p), None) => (SPO, vec![s, p]),
        (Some(s), None, None) => (SPO, vec![s]),
        (Some(s), None, Some(o)) => (SOP, vec![s, o]),
        (None, Some(p), Some(o)) => (POS, vec![p, o]),
        (None, Some(p), None) => (POS, vec![p]),
        (None, None, Some(o)) => (OSP, vec![o]),
        (None, None, None) => (SPO, Vec::new()),
    }
}

/// Half-open row range whose keys start with `prefix` (in the rows' own
/// level order). `prefix.len()` must be ≤ 2 for a non-degenerate range;
/// an empty prefix spans everything.
pub(crate) fn prefix_range(rows: &[Triple], prefix: &[TermId]) -> (usize, usize) {
    match prefix.len() {
        0 => (0, rows.len()),
        1 => {
            let a = prefix[0];
            let lo = rows.partition_point(|&(x, _, _)| x < a);
            let hi = rows.partition_point(|&(x, _, _)| x <= a);
            (lo, hi)
        }
        _ => {
            let (a, b) = (prefix[0], prefix[1]);
            let lo = rows.partition_point(|&(x, y, _)| (x, y) < (a, b));
            let hi = rows.partition_point(|&(x, y, _)| (x, y) <= (a, b));
            (lo, hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert("Alice", "type", "Artist");
        s.insert("Alice", "graduatedFrom", "Harvard_University");
        s.insert("Bob", "type", "Artist");
        s.insert("Bob", "graduatedFrom", "MIT");
        s.insert("Carol", "type", "Politician");
        s.ensure_indexes();
        s
    }

    #[test]
    fn scans_by_every_pattern_shape() {
        let s = store();
        let ty = s.dict.get("type").unwrap();
        let artist = s.dict.get("Artist").unwrap();
        let alice = s.dict.get("Alice").unwrap();
        assert_eq!(s.scan(None, Some(ty), Some(artist)).len(), 2);
        assert_eq!(s.scan(Some(alice), None, None).len(), 2);
        assert_eq!(s.scan(None, Some(ty), None).len(), 3);
        assert_eq!(s.scan(None, None, Some(artist)).len(), 2);
        assert_eq!(s.scan(Some(alice), Some(ty), Some(artist)).len(), 1);
        assert_eq!(s.scan(None, None, None).len(), 5);
    }

    #[test]
    fn counts_agree_with_scans() {
        let s = store();
        let ty = s.dict.get("type").unwrap();
        let artist = s.dict.get("Artist").unwrap();
        for (a, b, c) in
            [(None, Some(ty), Some(artist)), (None, Some(ty), None), (None, None, None)]
        {
            assert_eq!(s.count(a, b, c), s.scan(a, b, c).len());
        }
    }

    #[test]
    fn scans_return_spo_order_components() {
        // Every routed permutation must unpermute back to (s, p, o).
        let s = store();
        let alice = s.dict.get("Alice").unwrap();
        let harvard = s.dict.get("Harvard_University").unwrap();
        let grad = s.dict.get("graduatedFrom").unwrap();
        // (S, -, O) routes through SOP.
        let hits = s.scan(Some(alice), None, Some(harvard));
        assert_eq!(hits, vec![(alice, grad, harvard)]);
        // (-, -, O) routes through OSP.
        for (ts, _, to) in s.scan(None, None, Some(harvard)) {
            assert_eq!(to, harvard);
            assert_eq!(ts, alice);
        }
    }

    #[test]
    fn summary_counts_predicates_and_char_sets() {
        let s = store();
        let sum = s.summary();
        assert_eq!(sum.triples, 5);
        assert_eq!(sum.distinct_subjects, 3);
        assert_eq!(sum.distinct_predicates, 2);
        let ty = s.dict.get("type").unwrap();
        let grad = s.dict.get("graduatedFrom").unwrap();
        assert_eq!(sum.pred(ty).triples, 3);
        assert_eq!(sum.pred(ty).distinct_subjects, 3);
        assert_eq!(sum.pred(ty).distinct_objects, 2);
        assert_eq!(sum.pred(grad).distinct_subjects, 2);
        assert_eq!(sum.pred(grad).distinct_objects, 2);
        // Alice and Bob share {type, graduatedFrom}; Carol has {type}.
        assert!(sum.char_sets_complete);
        assert_eq!(sum.subjects_with_all(&[ty, grad]), 2);
        assert_eq!(sum.subjects_with_all(&[ty]), 3);
        assert_eq!(sum.subjects_with_all(&[]), 3);
    }

    #[test]
    fn summary_counts_duplicates_once_per_distinct_pair() {
        let mut s = TripleStore::new();
        s.insert("a", "p", "b");
        s.insert("a", "p", "b");
        s.insert("a", "p", "c");
        s.ensure_indexes();
        let p = s.dict.get("p").unwrap();
        let stat = s.summary().pred(p);
        assert_eq!(stat.triples, 3);
        assert_eq!(stat.distinct_subjects, 1);
        assert_eq!(stat.distinct_objects, 2);
        assert!((stat.subject_fanout() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ensure_indexes")]
    fn stale_index_panics() {
        let mut s = store();
        s.insert("Dave", "type", "Artist");
        let ty = s.dict.get("type").unwrap();
        let _ = s.scan(None, Some(ty), None);
    }
}
