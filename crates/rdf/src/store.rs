//! Triple storage with three sorted permutation indexes.
//!
//! Every lookup pattern (any subset of S/P/O bound) is answered by a
//! binary-searched range scan over the best of the SPO, POS and OSP
//! orderings — the classical RDF-3x layout, reduced to the three
//! permutations the BGP evaluator needs.

use crate::dict::{Dictionary, TermId};

/// A dictionary-encoded triple.
pub type Triple = (TermId, TermId, TermId);

/// The store: dictionary plus indexed triples. Indexes are rebuilt lazily
/// after inserts.
pub struct TripleStore {
    /// Term dictionary.
    pub dict: Dictionary,
    triples: Vec<Triple>,
    spo: Vec<Triple>,
    pos: Vec<Triple>,
    osp: Vec<Triple>,
    dirty: bool,
}

impl Default for TripleStore {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TripleStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TripleStore")
            .field("triples", &self.triples.len())
            .field("terms", &self.dict.len())
            .field("dirty", &self.dirty)
            .finish()
    }
}

impl TripleStore {
    /// New empty store.
    pub fn new() -> Self {
        Self {
            dict: Dictionary::new(),
            triples: Vec::new(),
            spo: Vec::new(),
            pos: Vec::new(),
            osp: Vec::new(),
            dirty: false,
        }
    }

    /// Insert a triple of strings.
    pub fn insert(&mut self, s: &str, p: &str, o: &str) {
        let t = (self.dict.encode(s), self.dict.encode(p), self.dict.encode(o));
        self.triples.push(t);
        self.dirty = true;
    }

    /// Insert an encoded triple.
    pub fn insert_ids(&mut self, t: Triple) {
        self.triples.push(t);
        self.dirty = true;
    }

    /// Number of stored triples (including duplicates).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// The triples in insertion order (including duplicates) — the raw
    /// sequence serializers persist; no index required.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// (Re)build indexes if needed.
    pub fn ensure_indexes(&mut self) {
        if !self.dirty {
            return;
        }
        self.spo = self.triples.clone();
        self.spo.sort_unstable();
        self.pos = self.triples.iter().map(|&(s, p, o)| (p, o, s)).collect();
        self.pos.sort_unstable();
        self.osp = self.triples.iter().map(|&(s, p, o)| (o, s, p)).collect();
        self.osp.sort_unstable();
        self.dirty = false;
    }

    /// All triples matching the pattern (bound components are `Some`).
    /// Results are in arbitrary order. Requires indexes to be built;
    /// builds them on the fly if the store is mutable — callers holding
    /// only `&self` must call [`Self::ensure_indexes`] first.
    ///
    /// # Panics
    /// Panics if indexes are stale (insert since last
    /// [`Self::ensure_indexes`]).
    pub fn scan(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        assert!(!self.dirty, "call ensure_indexes() after inserting");
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                let t = (s, p, o);
                if self.spo.binary_search(&t).is_ok() {
                    vec![t]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => range2(&self.spo, s, p),
            (Some(s), None, None) => range1(&self.spo, s),
            (Some(s), None, Some(o)) => {
                range2(&self.osp, o, s).into_iter().map(|(o, s, p)| (s, p, o)).collect()
            }
            (None, Some(p), Some(o)) => {
                range2(&self.pos, p, o).into_iter().map(|(p, o, s)| (s, p, o)).collect()
            }
            (None, Some(p), None) => {
                range1(&self.pos, p).into_iter().map(|(p, o, s)| (s, p, o)).collect()
            }
            (None, None, Some(o)) => {
                range1(&self.osp, o).into_iter().map(|(o, s, p)| (s, p, o)).collect()
            }
            (None, None, None) => self.spo.clone(),
        }
    }

    /// Count matches for a pattern without materializing (used for join
    /// ordering by selectivity).
    pub fn count(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> usize {
        assert!(!self.dirty, "call ensure_indexes() after inserting");
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.spo.binary_search(&(s, p, o)).is_ok()),
            (Some(s), Some(p), None) => range2_len(&self.spo, s, p),
            (Some(s), None, None) => range1_len(&self.spo, s),
            (Some(s), None, Some(o)) => range2_len(&self.osp, o, s),
            (None, Some(p), Some(o)) => range2_len(&self.pos, p, o),
            (None, Some(p), None) => range1_len(&self.pos, p),
            (None, None, Some(o)) => range1_len(&self.osp, o),
            (None, None, None) => self.spo.len(),
        }
    }
}

fn bounds1(index: &[Triple], a: TermId) -> (usize, usize) {
    let lo = index.partition_point(|&(x, _, _)| x < a);
    let hi = index.partition_point(|&(x, _, _)| x <= a);
    (lo, hi)
}

fn bounds2(index: &[Triple], a: TermId, b: TermId) -> (usize, usize) {
    let lo = index.partition_point(|&(x, y, _)| (x, y) < (a, b));
    let hi = index.partition_point(|&(x, y, _)| (x, y) <= (a, b));
    (lo, hi)
}

fn range1(index: &[Triple], a: TermId) -> Vec<Triple> {
    let (lo, hi) = bounds1(index, a);
    index[lo..hi].to_vec()
}

fn range1_len(index: &[Triple], a: TermId) -> usize {
    let (lo, hi) = bounds1(index, a);
    hi - lo
}

fn range2(index: &[Triple], a: TermId, b: TermId) -> Vec<Triple> {
    let (lo, hi) = bounds2(index, a, b);
    index[lo..hi].to_vec()
}

fn range2_len(index: &[Triple], a: TermId, b: TermId) -> usize {
    let (lo, hi) = bounds2(index, a, b);
    hi - lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert("Alice", "type", "Artist");
        s.insert("Alice", "graduatedFrom", "Harvard_University");
        s.insert("Bob", "type", "Artist");
        s.insert("Bob", "graduatedFrom", "MIT");
        s.insert("Carol", "type", "Politician");
        s.ensure_indexes();
        s
    }

    #[test]
    fn scans_by_every_pattern_shape() {
        let s = store();
        let ty = s.dict.get("type").unwrap();
        let artist = s.dict.get("Artist").unwrap();
        let alice = s.dict.get("Alice").unwrap();
        assert_eq!(s.scan(None, Some(ty), Some(artist)).len(), 2);
        assert_eq!(s.scan(Some(alice), None, None).len(), 2);
        assert_eq!(s.scan(None, Some(ty), None).len(), 3);
        assert_eq!(s.scan(None, None, Some(artist)).len(), 2);
        assert_eq!(s.scan(Some(alice), Some(ty), Some(artist)).len(), 1);
        assert_eq!(s.scan(None, None, None).len(), 5);
    }

    #[test]
    fn counts_agree_with_scans() {
        let s = store();
        let ty = s.dict.get("type").unwrap();
        let artist = s.dict.get("Artist").unwrap();
        for (a, b, c) in
            [(None, Some(ty), Some(artist)), (None, Some(ty), None), (None, None, None)]
        {
            assert_eq!(s.count(a, b, c), s.scan(a, b, c).len());
        }
    }

    #[test]
    #[should_panic(expected = "ensure_indexes")]
    fn stale_index_panics() {
        let mut s = store();
        s.insert("Dave", "type", "Artist");
        let ty = s.dict.get("type").unwrap();
        let _ = s.scan(None, Some(ty), None);
    }
}
