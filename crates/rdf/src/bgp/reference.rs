//! The original selectivity-ordered index-nested-loop BGP evaluator,
//! retained verbatim as the differential-test oracle for
//! [`crate::lftj`] — the same role `ged::reference` plays for the GED
//! engine. Its per-step logic is small enough to audit by eye: pick the
//! unused pattern with the fewest matches under current bindings, scan
//! it, bind, recurse, backtrack.
//!
//! Do **not** optimize this module; its value is being obviously correct.

use crate::bgp::Bindings;
use crate::dict::TermId;
use crate::store::TripleStore;
use std::collections::HashMap;
use uqsj_sparql::{SparqlQuery, Term};

/// All variable bindings satisfying the pattern, by backtracking
/// index-nested-loop joins. May contain duplicate bindings when the
/// store holds duplicate triples.
pub fn solutions(store: &TripleStore, query: &SparqlQuery) -> Vec<Bindings> {
    // Resolve constant terms up front; a constant not in the dictionary
    // means no results.
    #[derive(Clone)]
    enum Slot {
        Const(TermId),
        Var(String),
    }
    let resolve = |t: &Term| -> Option<Slot> {
        match t {
            Term::Var(v) => Some(Slot::Var(v.clone())),
            Term::Iri(x) | Term::Literal(x) => store.dict.get(x).map(Slot::Const),
        }
    };
    let mut patterns = Vec::with_capacity(query.triples.len());
    for t in &query.triples {
        match (resolve(&t.subject), resolve(&t.predicate), resolve(&t.object)) {
            (Some(s), Some(p), Some(o)) => patterns.push([s, p, o]),
            _ => return Vec::new(),
        }
    }

    let mut results = Vec::new();
    let mut bindings: Bindings = HashMap::new();
    let mut used = vec![false; patterns.len()];

    fn bound(slot: &Slot, b: &Bindings) -> Option<TermId>
    where
        Slot: Sized,
    {
        match slot {
            Slot::Const(id) => Some(*id),
            Slot::Var(v) => b.get(v).copied(),
        }
    }

    fn recurse(
        store: &TripleStore,
        patterns: &[[Slot; 3]],
        used: &mut Vec<bool>,
        bindings: &mut Bindings,
        results: &mut Vec<Bindings>,
    ) {
        // Pick the most selective unused pattern.
        let next = (0..patterns.len()).filter(|&i| !used[i]).min_by_key(|&i| {
            let [s, p, o] = &patterns[i];
            store.count(bound(s, bindings), bound(p, bindings), bound(o, bindings))
        });
        let Some(i) = next else {
            results.push(bindings.clone());
            return;
        };
        used[i] = true;
        let [s, p, o] = &patterns[i];
        let matches = store.scan(bound(s, bindings), bound(p, bindings), bound(o, bindings));
        for (ms, mp, mo) in matches {
            let mut added: Vec<&String> = Vec::new();
            let mut ok = true;
            for (slot, val) in [(s, ms), (p, mp), (o, mo)] {
                if let Slot::Var(v) = slot {
                    match bindings.get(v) {
                        Some(&existing) if existing != val => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            bindings.insert(v.clone(), val);
                            added.push(v);
                        }
                    }
                }
            }
            if ok {
                recurse(store, patterns, used, bindings, results);
            }
            for v in added {
                bindings.remove(v);
            }
        }
        used[i] = false;
    }

    recurse(store, &patterns, &mut used, &mut bindings, &mut results);
    results
}
