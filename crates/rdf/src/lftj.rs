//! Leapfrog-triejoin-style worst-case-optimal BGP evaluation.
//!
//! Instead of joining one pattern at a time (which materializes
//! cross-products on cyclic patterns — a triangle's first two patterns
//! alone enumerate every length-2 path), the join proceeds one
//! **variable** at a time down the plan's elimination order. At each
//! level, every pattern mentioning the variable contributes a trie
//! cursor — a sorted index range over one of the store's six
//! permutations, narrowed by the pattern's already-bound positions — and
//! the cursors leapfrog to their intersection: repeatedly seek the
//! laggards up to the current maximum until all agree. Each agreed value
//! is bound and the join recurses; nothing outside the intersection is
//! ever touched, which is what bounds intermediates by the fractional
//! edge cover (the AGM bound) rather than by pairwise join sizes.
//!
//! Every cursor positioning is a binary search counted as a *seek* —
//! the unit the planner-vs-greedy conformance check and the
//! `uqsj_rdf_pattern_seeks` histogram measure.

use crate::bgp::Bindings;
use crate::dict::TermId;
use crate::plan::{self, Plan};
use crate::store::{self, TripleStore, PERMS};
use uqsj_sparql::{SparqlQuery, Term};

/// Per-run counters and plan echoes, for metrics and conformance.
#[derive(Clone, Debug, Default)]
pub struct LftjStats {
    /// Total cursor positionings (binary searches) over all patterns.
    pub seeks: u64,
    /// Seeks attributed to each pattern, parallel to `query.triples`.
    pub per_pattern_seeks: Vec<u64>,
    /// The variable elimination order used.
    pub order: Vec<String>,
    /// Planner's estimated result rows (see [`plan::Plan`]).
    pub estimated_rows: f64,
    /// Exact per-pattern isolated cardinalities from the plan.
    pub pattern_cards: Vec<f64>,
    /// Actual result rows produced.
    pub rows: u64,
}

#[derive(Clone, Copy, PartialEq)]
enum PSlot {
    Const(TermId),
    Var(usize),
}

/// One pattern's trie cursor at the current join level: a sorted row
/// range of one permutation, narrowed to the bound prefix, enumerating
/// distinct values of the key component at `depth`.
struct Cursor<'a> {
    rows: &'a [store::Triple],
    lo: usize,
    hi: usize,
    depth: usize,
    pattern: usize,
}

impl Cursor<'_> {
    /// Smallest value ≥ `target` at this cursor's depth, or `None` when
    /// the range is exhausted. One binary search — one seek.
    fn seek(&mut self, target: TermId) -> Option<TermId> {
        let key = |t: &store::Triple| match self.depth {
            0 => t.0,
            1 => t.1,
            _ => t.2,
        };
        self.lo += self.rows[self.lo..self.hi].partition_point(|t| key(t) < target);
        if self.lo < self.hi {
            Some(key(&self.rows[self.lo]))
        } else {
            None
        }
    }
}

/// The permutation whose level order lists `bound` (in some order) as a
/// prefix followed by `target`. With all six orderings present, one
/// always exists.
fn pick_perm(bound: &[usize], target: usize) -> usize {
    (0..6)
        .find(|&i| {
            let perm = PERMS[i];
            perm[bound.len()] == target && perm[..bound.len()].iter().all(|p| bound.contains(p))
        })
        .expect("six permutations cover every bound-set/target combination")
}

/// All variable bindings satisfying the pattern, under the summary-based
/// plan's elimination order. Bindings are distinct by construction (the
/// leapfrog enumerates distinct values per level).
pub fn solutions(store: &TripleStore, query: &SparqlQuery) -> Vec<Bindings> {
    solutions_stats(store, query).0
}

/// As [`solutions`], returning the run's [`LftjStats`] too.
pub fn solutions_stats(store: &TripleStore, query: &SparqlQuery) -> (Vec<Bindings>, LftjStats) {
    let p = plan::plan(store, query);
    solutions_with_plan(store, query, &p)
}

/// Evaluate under an explicit variable order (every query variable
/// exactly once) — the hook the conformance suite uses to compare the
/// planner's order against the greedy baseline on equal footing.
pub fn solutions_with_order(
    store: &TripleStore,
    query: &SparqlQuery,
    order: &[String],
) -> (Vec<Bindings>, LftjStats) {
    let mut p = plan::plan(store, query);
    p.order = order.to_vec();
    solutions_with_plan(store, query, &p)
}

fn solutions_with_plan(
    store: &TripleStore,
    query: &SparqlQuery,
    plan: &Plan,
) -> (Vec<Bindings>, LftjStats) {
    let mut stats = LftjStats {
        per_pattern_seeks: vec![0; query.triples.len()],
        order: plan.order.clone(),
        estimated_rows: plan.estimated_rows,
        pattern_cards: plan.pattern_cards.clone(),
        ..LftjStats::default()
    };

    // Resolve terms; an unknown constant means no results.
    let vars = query.variables();
    debug_assert_eq!(
        {
            let mut o = plan.order.clone();
            o.sort();
            o
        },
        vars,
        "plan order must cover exactly the query variables"
    );
    let var_idx = |name: &str| vars.iter().position(|v| v == name).unwrap();
    let mut patterns: Vec<[PSlot; 3]> = Vec::with_capacity(query.triples.len());
    for t in &query.triples {
        let mut slots = [PSlot::Const(TermId(0)); 3];
        for (i, term) in [&t.subject, &t.predicate, &t.object].into_iter().enumerate() {
            match term {
                Term::Var(v) => slots[i] = PSlot::Var(var_idx(v)),
                Term::Iri(x) | Term::Literal(x) => match store.dict.get(x) {
                    Some(id) => slots[i] = PSlot::Const(id),
                    None => return (Vec::new(), stats),
                },
            }
        }
        patterns.push(slots);
    }

    // Constant-only patterns act as global guards: one membership check
    // each, then they drop out of the per-variable leapfrog.
    for (i, pat) in patterns.iter().enumerate() {
        if pat.iter().all(|s| matches!(s, PSlot::Const(_))) {
            let val = |s: &PSlot| match s {
                PSlot::Const(id) => Some(*id),
                PSlot::Var(_) => None,
            };
            stats.seeks += 1;
            stats.per_pattern_seeks[i] += 1;
            if store.count(val(&pat[0]), val(&pat[1]), val(&pat[2])) == 0 {
                return (Vec::new(), stats);
            }
        }
    }

    let order: Vec<usize> = plan.order.iter().map(|v| var_idx(v)).collect();
    let mut assignment: Vec<Option<TermId>> = vec![None; vars.len()];
    let mut results = Vec::new();
    join_level(store, &patterns, &order, 0, &mut assignment, &mut results, &mut stats);
    let out: Vec<Bindings> = results
        .into_iter()
        .map(|vals: Vec<TermId>| vars.iter().cloned().zip(vals).collect::<Bindings>())
        .collect();
    stats.rows = out.len() as u64;
    (out, stats)
}

/// Recursion over elimination levels: leapfrog-intersect the cursors of
/// every pattern mentioning `order[level]`, binding each agreed value.
fn join_level(
    store: &TripleStore,
    patterns: &[[PSlot; 3]],
    order: &[usize],
    level: usize,
    assignment: &mut Vec<Option<TermId>>,
    results: &mut Vec<Vec<TermId>>,
    stats: &mut LftjStats,
) {
    if level == order.len() {
        results.push(assignment.iter().map(|v| v.unwrap_or(TermId(0))).collect());
        return;
    }
    let v = order[level];

    // Build one cursor per pattern mentioning v, conditioned on the
    // pattern's bound positions (constants and earlier variables).
    let mut cursors: Vec<Cursor<'_>> = Vec::new();
    // Patterns where v occurs more than once need a post-bind membership
    // check once fully bound: the cursor constrains only the first
    // occurrence.
    let mut recheck: Vec<usize> = Vec::new();
    for (i, pat) in patterns.iter().enumerate() {
        let occurrences: Vec<usize> = (0..3).filter(|&j| pat[j] == PSlot::Var(v)).collect();
        if occurrences.is_empty() {
            continue;
        }
        let target = occurrences[0];
        let mut bound_pos: Vec<usize> = Vec::new();
        let mut bound_val: Vec<TermId> = Vec::new();
        for (j, slot) in pat.iter().enumerate() {
            match *slot {
                PSlot::Const(id) => {
                    bound_pos.push(j);
                    bound_val.push(id);
                }
                PSlot::Var(u) => {
                    if u != v {
                        if let Some(val) = assignment[u] {
                            bound_pos.push(j);
                            bound_val.push(val);
                        }
                    }
                }
            }
        }
        if occurrences.len() > 1 {
            recheck.push(i);
        }
        let perm_id = pick_perm(&bound_pos, target);
        let perm = PERMS[perm_id];
        // Prefix values in the permutation's level order.
        let prefix: Vec<TermId> = (0..bound_pos.len())
            .map(|k| {
                let pos = perm[k];
                let at = bound_pos.iter().position(|&p| p == pos).unwrap();
                bound_val[at]
            })
            .collect();
        let rows = store.perm(perm_id);
        let (lo, hi) = store::prefix_range(rows, &prefix);
        stats.seeks += 1;
        stats.per_pattern_seeks[i] += 1;
        cursors.push(Cursor { rows, lo, hi, depth: bound_pos.len(), pattern: i });
    }
    debug_assert!(!cursors.is_empty(), "every ordered variable occurs in some pattern");

    // Leapfrog: position every cursor at its first value, then chase the
    // maximum until all agree or any range empties.
    let mut vals: Vec<TermId> = Vec::with_capacity(cursors.len());
    for c in cursors.iter_mut() {
        stats.seeks += 1;
        stats.per_pattern_seeks[c.pattern] += 1;
        match c.seek(TermId(0)) {
            Some(val) => vals.push(val),
            None => return,
        }
    }
    loop {
        let max = vals.iter().copied().max().unwrap();
        let mut agreed = true;
        for (c, val) in cursors.iter_mut().zip(vals.iter_mut()) {
            if *val < max {
                agreed = false;
                stats.seeks += 1;
                stats.per_pattern_seeks[c.pattern] += 1;
                match c.seek(max) {
                    Some(next) => *val = next,
                    None => return,
                }
            }
        }
        if !agreed {
            continue;
        }
        // All cursors agree on `max`: bind and recurse (after verifying
        // repeated-occurrence patterns that are now fully bound).
        assignment[v] = Some(max);
        let ok = recheck.iter().all(|&i| {
            let pat = &patterns[i];
            let resolved: Vec<Option<TermId>> = pat
                .iter()
                .map(|s| match s {
                    PSlot::Const(id) => Some(*id),
                    PSlot::Var(u) => assignment[*u],
                })
                .collect();
            if resolved.iter().any(|r| r.is_none()) {
                // A later variable still free: its own level constrains
                // both occurrences (they are bound prefix positions).
                return true;
            }
            stats.seeks += 1;
            stats.per_pattern_seeks[i] += 1;
            store.count(resolved[0], resolved[1], resolved[2]) > 0
        });
        if ok {
            join_level(store, patterns, order, level + 1, assignment, results, stats);
        }
        assignment[v] = None;
        // Advance past `max` on the first cursor and continue.
        let Some(next_target) = max.0.checked_add(1).map(TermId) else { return };
        stats.seeks += 1;
        stats.per_pattern_seeks[cursors[0].pattern] += 1;
        match cursors[0].seek(next_target) {
            Some(next) => vals[0] = next,
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::reference;
    use std::collections::BTreeSet;
    use uqsj_sparql::parse;

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert("Alice", "type", "Artist");
        s.insert("Alice", "graduatedFrom", "Harvard_University");
        s.insert("Bob", "type", "Artist");
        s.insert("Bob", "graduatedFrom", "MIT");
        s.insert("Carol", "type", "Politician");
        s.insert("Carol", "graduatedFrom", "Harvard_University");
        s.insert("Harvard_University", "type", "University");
        s.ensure_indexes();
        s
    }

    fn canon(sols: Vec<Bindings>) -> BTreeSet<Vec<(String, u32)>> {
        sols.into_iter()
            .map(|b| {
                let mut row: Vec<(String, u32)> = b.into_iter().map(|(k, v)| (k, v.0)).collect();
                row.sort();
                row
            })
            .collect()
    }

    fn agree(s: &TripleStore, q: &str) {
        let q = parse(q).unwrap();
        assert_eq!(canon(solutions(s, &q)), canon(reference::solutions(s, &q)), "{q}");
    }

    #[test]
    fn agrees_with_reference_on_basic_shapes() {
        let s = store();
        agree(&s, "SELECT ?p WHERE { ?p type Artist . ?p graduatedFrom Harvard_University }");
        agree(&s, "SELECT * WHERE { ?p graduatedFrom ?u . ?u type University }");
        agree(&s, "SELECT ?x WHERE { ?x type Dragon }");
        agree(&s, "SELECT * WHERE { ?s ?p ?o }");
        agree(&s, "SELECT * WHERE { ?s ?p ?o . ?o type University }");
    }

    #[test]
    fn triangle_intersection_is_exact() {
        let mut s = TripleStore::new();
        // One real triangle a→b→c→a plus dangling paths that a pairwise
        // join would enumerate.
        s.insert("a", "p", "b");
        s.insert("b", "p", "c");
        s.insert("c", "p", "a");
        s.insert("a", "p", "x1");
        s.insert("x1", "p", "x2");
        s.insert("b", "p", "y1");
        s.ensure_indexes();
        let q = parse("SELECT * WHERE { ?x p ?y . ?y p ?z . ?z p ?x }").unwrap();
        let got = canon(solutions(&s, &q));
        assert_eq!(got, canon(reference::solutions(&s, &q)));
        assert_eq!(got.len(), 3); // the triangle under rotation
    }

    #[test]
    fn repeated_variable_membership_is_verified() {
        let mut s = TripleStore::new();
        s.insert("a", "knows", "a");
        s.insert("a", "knows", "b");
        s.insert("b", "knows", "a");
        s.ensure_indexes();
        // Self-loop: cursor intersection alone would accept b (it knows
        // and is known), but only a has the (x, knows, x) triple.
        let q = parse("SELECT ?x WHERE { ?x knows ?x }").unwrap();
        let got = canon(solutions(&s, &q));
        assert_eq!(got, canon(reference::solutions(&s, &q)));
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn constant_only_pattern_guards() {
        let s = store();
        let q = parse("SELECT ?x WHERE { Alice type Artist . ?x type Politician }").unwrap();
        agree(&s, "SELECT ?x WHERE { Alice type Artist . ?x type Politician }");
        let (sols, stats) = solutions_stats(&s, &q);
        assert_eq!(sols.len(), 1);
        assert!(stats.seeks > 0);
        // Unsatisfied guard empties the result.
        agree(&s, "SELECT ?x WHERE { Alice type Politician . ?x type Artist }");
    }

    #[test]
    fn empty_pattern_yields_single_empty_binding() {
        let s = store();
        let q = SparqlQuery { select: vec![], triples: vec![] };
        let sols = solutions(&s, &q);
        assert_eq!(sols.len(), 1);
        assert!(sols[0].is_empty());
    }

    #[test]
    fn stats_report_order_and_seeks() {
        let s = store();
        let q = parse("SELECT ?p WHERE { ?p type Artist . ?p graduatedFrom Harvard_University }")
            .unwrap();
        let (sols, stats) = solutions_stats(&s, &q);
        assert_eq!(sols.len(), 1);
        assert_eq!(stats.rows, 1);
        assert_eq!(stats.order.len(), 1);
        assert_eq!(stats.per_pattern_seeks.len(), 2);
        assert_eq!(stats.seeks, stats.per_pattern_seeks.iter().sum::<u64>());
        assert!(stats.estimated_rows >= 0.0);
    }

    #[test]
    fn explicit_order_matches_planned_results() {
        let s = store();
        let q = parse("SELECT * WHERE { ?p graduatedFrom ?u . ?u type University }").unwrap();
        let planned = canon(solutions(&s, &q));
        for order in [["p", "u"], ["u", "p"]] {
            let order: Vec<String> = order.iter().map(|s| s.to_string()).collect();
            let (sols, stats) = solutions_with_order(&s, &q, &order);
            assert_eq!(canon(sols), planned);
            assert_eq!(stats.order, order);
        }
    }
}
