//! Summary-based cardinality estimation and variable-elimination
//! ordering for BGP evaluation.
//!
//! The estimator works from the [`crate::store::Summary`] the store
//! maintains alongside its indexes: per-predicate triple and distinct
//! counts, plus characteristic sets (the distinct predicate set of each
//! subject, with multiplicity) in the style of "Estimating the
//! Cardinality of Conjunctive Queries over RDF Data Using Graph
//! Summarisation". Star queries — all patterns sharing one subject
//! variable with constant predicates, the dominant Q/A template shape —
//! are estimated directly from characteristic sets; everything else falls
//! back to the independence-with-containment formula over per-variable
//! domain estimates.
//!
//! The produced [`Plan`] carries the variable elimination order
//! [`crate::lftj`] joins in: variables with small estimated domains
//! first, constrained to keep the chosen prefix connected so the trie
//! cursors always have a bound anchor.

use crate::dict::TermId;
use crate::store::TripleStore;
use uqsj_sparql::{SparqlQuery, Term};

/// A planned evaluation of one basic graph pattern.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Variable elimination order (names without `?`), every query
    /// variable exactly once.
    pub order: Vec<String>,
    /// Per-pattern match counts in isolation (exact, from index ranges),
    /// parallel to `query.triples`.
    pub pattern_cards: Vec<f64>,
    /// Estimated result rows for the whole join.
    pub estimated_rows: f64,
}

/// The multiplicative error of an estimate against the true value:
/// `max(est/actual, actual/est)` with both floored at 1, so a perfect
/// estimate scores 1.0 and the measure is symmetric.
pub fn q_error(estimate: f64, actual: f64) -> f64 {
    let e = estimate.max(1.0);
    let a = actual.max(1.0);
    (e / a).max(a / e)
}

/// One triple pattern with constants resolved against the dictionary.
/// `None` means the constant is absent from the store (zero matches).
type Resolved = [Option<Slot>; 3];

#[derive(Clone, Copy, Debug, PartialEq)]
enum Slot {
    Const(TermId),
    Var(usize),
}

/// Resolve the query's patterns against the store dictionary and collect
/// the distinct variable names. Returns `None` for a variable-free term
/// that is not in the dictionary (the pattern cannot match).
fn resolve(store: &TripleStore, query: &SparqlQuery) -> (Vec<String>, Vec<Resolved>) {
    let vars = query.variables();
    let var_idx = |name: &str| vars.iter().position(|v| v == name).unwrap();
    let patterns = query
        .triples
        .iter()
        .map(|t| {
            [&t.subject, &t.predicate, &t.object].map(|term| match term {
                Term::Var(v) => Some(Slot::Var(var_idx(v))),
                Term::Iri(x) | Term::Literal(x) => store.dict.get(x).map(Slot::Const),
            })
        })
        .collect();
    (vars, patterns)
}

/// Exact match count of one pattern in isolation (variables free).
fn pattern_card(store: &TripleStore, pattern: &Resolved) -> f64 {
    if pattern.iter().any(|s| s.is_none()) {
        return 0.0;
    }
    let pick = |s: &Option<Slot>| match s {
        Some(Slot::Const(id)) => Some(*id),
        _ => None,
    };
    store.count(pick(&pattern[0]), pick(&pattern[1]), pick(&pattern[2])) as f64
}

/// Estimated distinct values variable `v` can take in `pattern`, from the
/// summary; `f64::INFINITY` when the pattern does not mention `v`.
fn domain(store: &TripleStore, pattern: &Resolved, card: f64, v: usize) -> f64 {
    let mentions = (0..3).any(|i| pattern[i] == Some(Slot::Var(v)));
    if !mentions {
        return f64::INFINITY;
    }
    let sum = store.summary();
    let pred = match pattern[1] {
        Some(Slot::Const(p)) => Some(sum.pred(p)),
        _ => None,
    };
    let mut d = f64::INFINITY;
    for (i, slot) in pattern.iter().enumerate() {
        if *slot != Some(Slot::Var(v)) {
            continue;
        }
        let here = match (i, &pred) {
            (0, Some(ps)) => ps.distinct_subjects as f64,
            (2, Some(ps)) => ps.distinct_objects as f64,
            (0, None) => sum.distinct_subjects as f64,
            (1, _) => sum.distinct_predicates as f64,
            (_, None) => sum.distinct_objects as f64,
            _ => unreachable!(),
        };
        d = d.min(here);
    }
    // A variable cannot take more distinct values than the pattern has
    // matching triples.
    d.min(card).max(if card == 0.0 { 0.0 } else { 1.0 })
}

/// Characteristic-set estimate for a pure star: every pattern shares the
/// same subject variable and has a constant predicate. Returns `None`
/// when the query is not that shape.
fn star_estimate(store: &TripleStore, patterns: &[Resolved]) -> Option<f64> {
    if patterns.len() < 2 {
        return None;
    }
    let center = match patterns[0][0] {
        Some(Slot::Var(v)) => v,
        _ => return None,
    };
    let mut preds = Vec::with_capacity(patterns.len());
    for p in patterns {
        if p[0] != Some(Slot::Var(center)) {
            return None;
        }
        match (p[1], p[2]) {
            (Some(Slot::Const(pred)), Some(obj)) => {
                // An object repeating the center variable is not a star.
                if obj == Slot::Var(center) {
                    return None;
                }
                preds.push((pred, obj));
            }
            _ => return None,
        }
    }
    let sum = store.summary();
    let mut distinct: Vec<TermId> = preds.iter().map(|&(p, _)| p).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let base = sum.subjects_with_all(&distinct) as f64;
    if base == 0.0 {
        return Some(0.0);
    }
    let mut est = base;
    for &(pred, obj) in &preds {
        let ps = sum.pred(pred);
        if ps.distinct_subjects == 0 {
            return Some(0.0);
        }
        match obj {
            // Each qualifying subject contributes its mean fanout rows.
            Slot::Var(_) => est *= ps.subject_fanout(),
            // Constant object: under the containment assumption the
            // (p, o)-subjects concentrate in the qualifying set, so the
            // per-subject survival rate is min(|(p,o)|, base) / base.
            Slot::Const(o) => {
                let matches = store.count(None, Some(pred), Some(o)) as f64;
                est *= matches.min(base) / base;
            }
        }
    }
    Some(est)
}

/// Independence-with-containment estimate: product of pattern
/// cardinalities, divided for every join variable by the product of its
/// non-minimal per-pattern domains.
fn generic_estimate(
    store: &TripleStore,
    patterns: &[Resolved],
    cards: &[f64],
    nvars: usize,
) -> f64 {
    let mut est: f64 = cards.iter().product();
    for v in 0..nvars {
        let domains: Vec<f64> = patterns
            .iter()
            .zip(cards)
            .map(|(p, &c)| domain(store, p, c, v))
            .filter(|d| d.is_finite())
            .collect();
        if domains.len() < 2 {
            continue;
        }
        let min = domains.iter().cloned().fold(f64::INFINITY, f64::min);
        if min <= 0.0 {
            return 0.0;
        }
        // Π cards × d_min / Π d_j — for two patterns this is the classic
        // |R||S| / max(d_R, d_S); the containment assumption extends it
        // to k patterns sharing the variable.
        est *= min;
        for d in &domains {
            est /= d;
        }
    }
    est
}

/// Greedy one-step-lookahead ordering: variables ascending by the
/// smallest isolated cardinality of any pattern mentioning them —
/// the ordering analogue of what the nested-loop reference does at
/// runtime. Kept public as the baseline the conformance suite compares
/// planner seek counts against.
pub fn greedy_order(store: &TripleStore, query: &SparqlQuery) -> Vec<String> {
    let (vars, patterns) = resolve(store, query);
    let cards: Vec<f64> = patterns.iter().map(|p| pattern_card(store, p)).collect();
    let mut scored: Vec<(f64, String)> = vars
        .iter()
        .enumerate()
        .map(|(v, name)| {
            let best = patterns
                .iter()
                .zip(&cards)
                .filter(|(p, _)| p.contains(&Some(Slot::Var(v))))
                .map(|(_, &c)| c)
                .fold(f64::INFINITY, f64::min);
            (best, name.clone())
        })
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, name)| name).collect()
}

/// Plan a query: exact per-pattern cardinalities, a summary-based row
/// estimate, and a connected small-domain-first elimination order.
pub fn plan(store: &TripleStore, query: &SparqlQuery) -> Plan {
    let (vars, patterns) = resolve(store, query);
    let cards: Vec<f64> = patterns.iter().map(|p| pattern_card(store, p)).collect();

    let estimated_rows = if patterns.iter().any(|p| p.iter().any(|s| s.is_none())) {
        0.0
    } else if let Some(est) = star_estimate(store, &patterns) {
        est
    } else {
        generic_estimate(store, &patterns, &cards, vars.len())
    };

    // Per-variable domain: the tightest estimate over patterns
    // mentioning it.
    let dom: Vec<f64> = (0..vars.len())
        .map(|v| {
            patterns
                .iter()
                .zip(&cards)
                .map(|(p, &c)| domain(store, p, c, v))
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    // Greedy connected ordering: cheapest domain first; after the first
    // pick, only variables sharing a pattern with an already-ordered
    // variable are eligible (falling back to all remaining if the query
    // graph is disconnected). Ties break by name for determinism.
    let shares = |v: usize, chosen: &[usize]| {
        patterns.iter().any(|p| {
            p.contains(&Some(Slot::Var(v)))
                && p.iter().any(|s| matches!(s, Some(Slot::Var(u)) if chosen.contains(u)))
        })
    };
    let mut chosen: Vec<usize> = Vec::with_capacity(vars.len());
    while chosen.len() < vars.len() {
        let connected: Vec<usize> = (0..vars.len())
            .filter(|v| !chosen.contains(v))
            .filter(|&v| chosen.is_empty() || shares(v, &chosen))
            .collect();
        let pool = if connected.is_empty() {
            (0..vars.len()).filter(|v| !chosen.contains(v)).collect()
        } else {
            connected
        };
        let next = pool
            .into_iter()
            .min_by(|&a, &b| {
                dom[a].partial_cmp(&dom[b]).unwrap().then_with(|| vars[a].cmp(&vars[b]))
            })
            .unwrap();
        chosen.push(next);
    }

    Plan {
        order: chosen.into_iter().map(|v| vars[v].clone()).collect(),
        pattern_cards: cards,
        estimated_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_sparql::parse;

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        for i in 0..40 {
            s.insert(&format!("person{i}"), "type", "Person");
            s.insert(&format!("person{i}"), "livesIn", &format!("city{}", i % 4));
        }
        for i in 0..5 {
            s.insert(&format!("person{i}"), "type", "Artist");
            s.insert(&format!("person{i}"), "graduatedFrom", "Harvard_University");
        }
        s.ensure_indexes();
        s
    }

    #[test]
    fn star_estimate_is_exact_on_disjoint_char_sets() {
        let s = store();
        let q = parse("SELECT ?x WHERE { ?x type Artist . ?x graduatedFrom ?u }").unwrap();
        let p = plan(&s, &q);
        // Exactly persons 0..5 have both predicates with these shapes;
        // `type` fanout for them is 2 (Person + Artist), and the
        // characteristic-set count is exact, so the estimate lands within
        // a small constant of the true 5 rows.
        let actual = crate::bgp::reference::solutions(&s, &q).len() as f64;
        assert!(q_error(p.estimated_rows, actual) <= 4.0, "q-error too high: {p:?} vs {actual}");
    }

    #[test]
    fn order_prefers_selective_variables_and_stays_connected() {
        let s = store();
        let q = parse("SELECT * WHERE { ?a graduatedFrom ?u . ?a livesIn ?c . ?a type Person }")
            .unwrap();
        let p = plan(&s, &q);
        assert_eq!(p.order.len(), 3);
        // ?u (1 distinct object of graduatedFrom) is cheapest; ?a and ?c
        // follow via shared patterns.
        assert_eq!(p.order[0], "u");
        assert_eq!(p.pattern_cards[0], 5.0);
        assert_eq!(p.pattern_cards[1], 40.0);
    }

    #[test]
    fn unknown_constant_estimates_zero() {
        let s = store();
        let q = parse("SELECT ?x WHERE { ?x type Dragon }").unwrap();
        let p = plan(&s, &q);
        assert_eq!(p.estimated_rows, 0.0);
        assert_eq!(p.pattern_cards, vec![0.0]);
    }

    #[test]
    fn q_error_is_symmetric_and_floored() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(20.0, 10.0), q_error(10.0, 20.0));
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert!(q_error(0.0, 7.0) >= 7.0);
    }

    #[test]
    fn greedy_order_covers_all_variables() {
        let s = store();
        let q = parse("SELECT * WHERE { ?a livesIn ?c . ?a type ?t }").unwrap();
        let mut order = greedy_order(&s, &q);
        order.sort();
        assert_eq!(order, vec!["a".to_string(), "c".into(), "t".into()]);
    }
}
