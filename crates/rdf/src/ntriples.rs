//! Line-based N-Triples-style loader.
//!
//! Accepts full `<iri>` terms, `"literals"` and bare local names; IRIs are
//! reduced to local names to match the rest of the system. Lines starting
//! with `#` and blank lines are skipped.

use crate::store::TripleStore;
use bytes::Bytes;
use std::fmt;

/// Loader error with line number and the offending line's text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadError {
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed (empty when no single line is at
    /// fault, e.g. an encoding error over the whole buffer).
    pub line_text: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N-Triples error on line {}: {}", self.line, self.message)?;
        if !self.line_text.is_empty() {
            write!(f, " in {:?}", self.line_text)?;
        }
        Ok(())
    }
}

impl std::error::Error for LoadError {}

/// Load triples from text into `store`. Returns the number of triples
/// loaded.
pub fn load_str(store: &mut TripleStore, text: &str) -> Result<usize, LoadError> {
    let mut n = 0;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let terms = tokenize(line, i + 1)?;
        let [s, p, o] = terms;
        store.insert(&s, &p, &o);
        n += 1;
    }
    store.ensure_indexes();
    Ok(n)
}

/// Load from a byte buffer (the `bytes` entry point used when a dataset
/// is shipped as one blob).
pub fn load_bytes(store: &mut TripleStore, data: &Bytes) -> Result<usize, LoadError> {
    let text = std::str::from_utf8(data).map_err(|e| LoadError {
        line: 0,
        line_text: String::new(),
        message: format!("invalid UTF-8: {e}"),
    })?;
    load_str(store, text)
}

fn tokenize(line: &str, lineno: usize) -> Result<[String; 3], LoadError> {
    let err = |message: String| LoadError { line: lineno, line_text: line.to_owned(), message };
    let mut out: Vec<String> = Vec::with_capacity(3);
    let mut rest = line;
    while out.len() < 3 {
        rest = rest.trim_start();
        if rest.is_empty() {
            return Err(err(format!("expected 3 terms, found {}", out.len())));
        }
        if let Some(tail) = rest.strip_prefix('<') {
            let end = tail.find('>').ok_or_else(|| err("unterminated IRI".into()))?;
            out.push(local_name(&tail[..end]).to_owned());
            rest = &tail[end + 1..];
        } else if let Some(tail) = rest.strip_prefix('"') {
            let end = tail.find('"').ok_or_else(|| err("unterminated literal".into()))?;
            out.push(tail[..end].to_owned());
            rest = &tail[end + 1..];
        } else {
            let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
            let word = rest[..end].trim_end_matches('.');
            if word.is_empty() {
                return Err(err("empty term".into()));
            }
            out.push(word.to_owned());
            rest = &rest[end..];
        }
    }
    let rest = rest.trim();
    if !rest.is_empty() && rest != "." {
        return Err(err(format!("trailing content {rest:?}")));
    }
    Ok([out[0].clone(), out[1].clone(), out[2].clone()])
}

fn local_name(iri: &str) -> &str {
    iri.rsplit(['/', '#']).next().unwrap_or(iri)
}

/// Serialize the whole store in the loader's format (one triple per line,
/// bare local names, terminating periods). Round-trips through
/// [`load_str`].
pub fn to_ntriples(store: &TripleStore) -> String {
    let mut out = String::new();
    for &(s, p, o) in store.scan(None, None, None).iter() {
        out.push_str(store.dict.decode(s));
        out.push(' ');
        out.push_str(store.dict.decode(p));
        out.push(' ');
        // Quote terms containing whitespace as literals.
        let obj = store.dict.decode(o);
        if obj.contains(char::is_whitespace) {
            out.push('"');
            out.push_str(obj);
            out.push('"');
        } else {
            out.push_str(obj);
        }
        out.push_str(" .\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_mixed_syntax() {
        let mut s = TripleStore::new();
        let n = load_str(
            &mut s,
            "# a comment\n\
             <http://ex/Alice> <http://ex/type> <http://ex/Artist> .\n\
             Alice graduatedFrom Harvard_University .\n\
             \n\
             Alice label \"Alice Smith\" .\n",
        )
        .unwrap();
        assert_eq!(n, 3);
        assert_eq!(s.len(), 3);
        let ty = s.dict.get("type").unwrap();
        assert_eq!(s.scan(None, Some(ty), None).len(), 1);
    }

    #[test]
    fn reports_line_numbers_and_offending_text() {
        let mut s = TripleStore::new();
        let err = load_str(&mut s, "ok p v .\nbroken line").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.line_text, "broken line");
        let shown = err.to_string();
        assert!(shown.contains("line 2"), "{shown}");
        assert!(shown.contains("broken line"), "{shown}");
        let err = load_str(&mut s, "a <unclosed p o .").unwrap_err();
        assert!(err.message.contains("unterminated IRI"));
        assert_eq!(err.line_text, "a <unclosed p o .");
    }

    #[test]
    fn loads_from_bytes() {
        let mut s = TripleStore::new();
        let data = Bytes::from_static(b"a p b .\n");
        assert_eq!(load_bytes(&mut s, &data).unwrap(), 1);
    }

    #[test]
    fn export_roundtrips() {
        let mut s = TripleStore::new();
        load_str(&mut s, "Alice type Artist .\nAlice label \"Alice Smith\" .\n").unwrap();
        let text = to_ntriples(&s);
        let mut s2 = TripleStore::new();
        assert_eq!(load_str(&mut s2, &text).unwrap(), 2);
        assert_eq!(to_ntriples(&s2), text);
    }
}
