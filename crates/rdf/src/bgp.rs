//! Basic-graph-pattern evaluation over the triple store.
//!
//! The evaluator orders patterns greedily by estimated selectivity (fewest
//! matching triples given already-bound variables), then performs
//! index-nested-loop joins with backtracking. This is the classical
//! strategy of RDF-3x-style engines, scaled to the in-memory store.

use crate::dict::TermId;
use crate::store::TripleStore;
use std::collections::HashMap;
use uqsj_sparql::{SparqlQuery, Term};

/// One solution: variable name → bound term.
pub type Bindings = HashMap<String, TermId>;

/// Evaluate a query; returns the projected rows (decoded strings, one
/// column per `SELECT` variable; all variables if `SELECT *`).
///
/// ```
/// let mut store = uqsj_rdf::TripleStore::new();
/// store.insert("Alice", "type", "Artist");
/// store.insert("Alice", "graduatedFrom", "Harvard_University");
/// store.ensure_indexes();
/// let q = uqsj_sparql::parse(
///     "SELECT ?p WHERE { ?p type Artist . ?p graduatedFrom Harvard_University }",
/// ).unwrap();
/// assert_eq!(uqsj_rdf::bgp::evaluate(&store, &q), vec![vec!["Alice".to_string()]]);
/// ```
pub fn evaluate(store: &TripleStore, query: &SparqlQuery) -> Vec<Vec<String>> {
    let solutions = solutions(store, query);
    let projection: Vec<String> = if query.select.is_empty() {
        let mut vars: Vec<String> =
            solutions.first().map(|b| b.keys().cloned().collect()).unwrap_or_default();
        vars.sort();
        vars
    } else {
        query.select.clone()
    };
    let mut rows: Vec<Vec<String>> = solutions
        .into_iter()
        .map(|b| {
            projection
                .iter()
                .map(|v| b.get(v).map(|&id| store.dict.decode(id).to_owned()).unwrap_or_default())
                .collect()
        })
        .collect();
    rows.sort();
    rows.dedup();
    rows
}

/// All variable bindings satisfying the pattern.
pub fn solutions(store: &TripleStore, query: &SparqlQuery) -> Vec<Bindings> {
    // Resolve constant terms up front; a constant not in the dictionary
    // means no results.
    #[derive(Clone)]
    enum Slot {
        Const(TermId),
        Var(String),
    }
    let resolve = |t: &Term| -> Option<Slot> {
        match t {
            Term::Var(v) => Some(Slot::Var(v.clone())),
            Term::Iri(x) | Term::Literal(x) => store.dict.get(x).map(Slot::Const),
        }
    };
    let mut patterns = Vec::with_capacity(query.triples.len());
    for t in &query.triples {
        match (resolve(&t.subject), resolve(&t.predicate), resolve(&t.object)) {
            (Some(s), Some(p), Some(o)) => patterns.push([s, p, o]),
            _ => return Vec::new(),
        }
    }

    let mut results = Vec::new();
    let mut bindings: Bindings = HashMap::new();
    let mut used = vec![false; patterns.len()];

    fn bound(slot: &Slot, b: &Bindings) -> Option<TermId>
    where
        Slot: Sized,
    {
        match slot {
            Slot::Const(id) => Some(*id),
            Slot::Var(v) => b.get(v).copied(),
        }
    }

    fn recurse(
        store: &TripleStore,
        patterns: &[[Slot; 3]],
        used: &mut Vec<bool>,
        bindings: &mut Bindings,
        results: &mut Vec<Bindings>,
    ) {
        // Pick the most selective unused pattern.
        let next = (0..patterns.len()).filter(|&i| !used[i]).min_by_key(|&i| {
            let [s, p, o] = &patterns[i];
            store.count(bound(s, bindings), bound(p, bindings), bound(o, bindings))
        });
        let Some(i) = next else {
            results.push(bindings.clone());
            return;
        };
        used[i] = true;
        let [s, p, o] = &patterns[i];
        let matches = store.scan(bound(s, bindings), bound(p, bindings), bound(o, bindings));
        for (ms, mp, mo) in matches {
            let mut added: Vec<&String> = Vec::new();
            let mut ok = true;
            for (slot, val) in [(s, ms), (p, mp), (o, mo)] {
                if let Slot::Var(v) = slot {
                    match bindings.get(v) {
                        Some(&existing) if existing != val => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            bindings.insert(v.clone(), val);
                            added.push(v);
                        }
                    }
                }
            }
            if ok {
                recurse(store, patterns, used, bindings, results);
            }
            for v in added {
                bindings.remove(v);
            }
        }
        used[i] = false;
    }

    recurse(store, &patterns, &mut used, &mut bindings, &mut results);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_sparql::parse;

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert("Alice", "type", "Artist");
        s.insert("Alice", "graduatedFrom", "Harvard_University");
        s.insert("Bob", "type", "Artist");
        s.insert("Bob", "graduatedFrom", "MIT");
        s.insert("Carol", "type", "Politician");
        s.insert("Carol", "graduatedFrom", "Harvard_University");
        s.insert("Harvard_University", "type", "University");
        s.ensure_indexes();
        s
    }

    #[test]
    fn answers_the_papers_intro_query() {
        let s = store();
        let q = parse(
            "SELECT ?person WHERE { ?person type Artist . ?person graduatedFrom Harvard_University . }",
        )
        .unwrap();
        let rows = evaluate(&s, &q);
        assert_eq!(rows, vec![vec!["Alice".to_string()]]);
    }

    #[test]
    fn join_over_shared_variable() {
        let s = store();
        let q = parse(
            "SELECT ?person ?school WHERE { ?person graduatedFrom ?school . ?school type University . }",
        )
        .unwrap();
        let rows = evaluate(&s, &q);
        assert_eq!(rows.len(), 2); // Alice + Carol, both Harvard
        assert!(rows.iter().all(|r| r[1] == "Harvard_University"));
    }

    #[test]
    fn unknown_constant_yields_empty() {
        let s = store();
        let q = parse("SELECT ?x WHERE { ?x type Dragon . }").unwrap();
        assert!(evaluate(&s, &q).is_empty());
    }

    #[test]
    fn repeated_variable_within_triple() {
        let mut s = TripleStore::new();
        s.insert("a", "knows", "a");
        s.insert("a", "knows", "b");
        s.ensure_indexes();
        let q = parse("SELECT ?x WHERE { ?x knows ?x . }").unwrap();
        let rows = evaluate(&s, &q);
        assert_eq!(rows, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn select_star_projects_all_variables_sorted() {
        let s = store();
        let q = parse("SELECT * WHERE { ?p graduatedFrom ?u . ?u type University }").unwrap();
        let rows = evaluate(&s, &q);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2); // ?p, ?u
    }

    #[test]
    fn results_are_deduplicated() {
        let mut s = TripleStore::new();
        s.insert("a", "p", "b");
        s.insert("a", "p", "c");
        s.ensure_indexes();
        let q = parse("SELECT ?x WHERE { ?x p ?y . }").unwrap();
        assert_eq!(evaluate(&s, &q).len(), 1);
    }
}
