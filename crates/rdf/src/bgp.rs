//! Basic-graph-pattern evaluation over the triple store.
//!
//! Two evaluators share this entry point:
//!
//! * [`crate::lftj`] — the default: a leapfrog-triejoin worst-case-optimal
//!   multiway join under a summary-based variable elimination order
//!   ([`crate::plan`]), which never materializes pairwise cross-products.
//! * [`mod@reference`] — the original selectivity-ordered index-nested-loop
//!   evaluator, retained as the differential-test oracle.
//!
//! Which one runs is decided by [`current`]: a thread-local scoped
//! override ([`scoped`]) if installed, else the process-wide default
//! ([`set_default`], normally [`BgpEval::Lftj`], flipped by
//! `uqsj-cli --bgp-eval reference`). Both produce identical solution
//! *sets*; the reference may emit duplicate bindings when the store holds
//! duplicate triples, which [`evaluate`]'s dedup step absorbs.

pub mod reference;

use crate::dict::TermId;
use crate::lftj;
use crate::obs::rdf_obs;
use crate::plan::q_error;
use crate::store::TripleStore;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use uqsj_sparql::SparqlQuery;

/// One solution: variable name → bound term.
pub type Bindings = HashMap<String, TermId>;

/// Which BGP evaluator answers queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BgpEval {
    /// Leapfrog triejoin under the summary-based plan (default).
    Lftj,
    /// The nested-loop oracle — slower, but obviously correct.
    Reference,
}

impl BgpEval {
    /// Parse a CLI/user label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lftj" => Some(Self::Lftj),
            "reference" => Some(Self::Reference),
            _ => None,
        }
    }

    /// Stable label (also the metric label value).
    pub fn label(self) -> &'static str {
        match self {
            Self::Lftj => "lftj",
            Self::Reference => "reference",
        }
    }
}

static DEFAULT_EVAL: AtomicU8 = AtomicU8::new(0); // 0 = Lftj, 1 = Reference

thread_local! {
    static SCOPED: Cell<Option<BgpEval>> = const { Cell::new(None) };
}

/// Set the process-wide default evaluator (e.g. from `--bgp-eval`).
pub fn set_default(eval: BgpEval) {
    DEFAULT_EVAL.store(matches!(eval, BgpEval::Reference) as u8, Ordering::Relaxed);
}

/// The process-wide default evaluator.
pub fn default_eval() -> BgpEval {
    if DEFAULT_EVAL.load(Ordering::Relaxed) == 0 {
        BgpEval::Lftj
    } else {
        BgpEval::Reference
    }
}

/// Restores the previous thread-local evaluator override on drop.
pub struct EvalGuard {
    prev: Option<BgpEval>,
}

impl Drop for EvalGuard {
    fn drop(&mut self) {
        SCOPED.with(|c| c.set(self.prev));
    }
}

/// Override the evaluator on this thread until the guard drops — how a
/// server honors a per-instance choice without perturbing the process
/// default (the same shape as `trace::set_enabled`'s scoping).
pub fn scoped(eval: BgpEval) -> EvalGuard {
    let prev = SCOPED.with(|c| c.replace(Some(eval)));
    EvalGuard { prev }
}

/// The evaluator a query issued now would use: the scoped override if
/// one is installed on this thread, else the process default.
pub fn current() -> BgpEval {
    SCOPED.with(|c| c.get()).unwrap_or_else(default_eval)
}

/// The projected column names of a query: its `SELECT` list, or for
/// `SELECT *` every variable of the pattern, sorted. Derived from the
/// query alone, so an empty solution set still has well-defined columns.
pub fn projection(query: &SparqlQuery) -> Vec<String> {
    if query.select.is_empty() {
        query.variables()
    } else {
        query.select.clone()
    }
}

/// Evaluate a query; returns the projected rows (decoded strings, one
/// column per `SELECT` variable; all pattern variables if `SELECT *`),
/// sorted and deduplicated.
///
/// ```
/// let mut store = uqsj_rdf::TripleStore::new();
/// store.insert("Alice", "type", "Artist");
/// store.insert("Alice", "graduatedFrom", "Harvard_University");
/// store.ensure_indexes();
/// let q = uqsj_sparql::parse(
///     "SELECT ?p WHERE { ?p type Artist . ?p graduatedFrom Harvard_University }",
/// ).unwrap();
/// assert_eq!(uqsj_rdf::bgp::evaluate(&store, &q), vec![vec!["Alice".to_string()]]);
/// ```
pub fn evaluate(store: &TripleStore, query: &SparqlQuery) -> Vec<Vec<String>> {
    evaluate_with(store, query, current())
}

/// All variable bindings satisfying the pattern, via the [`current`]
/// evaluator.
pub fn solutions(store: &TripleStore, query: &SparqlQuery) -> Vec<Bindings> {
    solutions_with(store, query, current())
}

/// As [`evaluate`], with an explicit evaluator choice.
pub fn evaluate_with(store: &TripleStore, query: &SparqlQuery, eval: BgpEval) -> Vec<Vec<String>> {
    let solutions = solutions_with(store, query, eval);
    let projection = projection(query);
    let mut rows: Vec<Vec<String>> = solutions
        .into_iter()
        .map(|b| {
            projection
                .iter()
                .map(|v| b.get(v).map(|&id| store.dict.decode(id).to_owned()).unwrap_or_default())
                .collect()
        })
        .collect();
    rows.sort();
    rows.dedup();
    rows
}

/// As [`solutions`], with an explicit evaluator choice. Records the
/// `uqsj_rdf_*` metric families.
pub fn solutions_with(store: &TripleStore, query: &SparqlQuery, eval: BgpEval) -> Vec<Bindings> {
    let obs = rdf_obs();
    obs.patterns.add(query.triples.len() as u64);
    match eval {
        BgpEval::Reference => {
            obs.queries_reference.inc();
            reference::solutions(store, query)
        }
        BgpEval::Lftj => {
            obs.queries_lftj.inc();
            let (sols, stats) = lftj::solutions_stats(store, query);
            obs.trie_seeks.add(stats.seeks);
            for &s in &stats.per_pattern_seeks {
                obs.pattern_seeks.observe(s);
            }
            let qe = q_error(stats.estimated_rows, stats.rows as f64);
            obs.estimate_qerror_x100.observe((qe * 100.0).ceil().min(1e15) as u64);
            sols
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_sparql::parse;

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert("Alice", "type", "Artist");
        s.insert("Alice", "graduatedFrom", "Harvard_University");
        s.insert("Bob", "type", "Artist");
        s.insert("Bob", "graduatedFrom", "MIT");
        s.insert("Carol", "type", "Politician");
        s.insert("Carol", "graduatedFrom", "Harvard_University");
        s.insert("Harvard_University", "type", "University");
        s.ensure_indexes();
        s
    }

    #[test]
    fn answers_the_papers_intro_query() {
        let s = store();
        let q = parse(
            "SELECT ?person WHERE { ?person type Artist . ?person graduatedFrom Harvard_University . }",
        )
        .unwrap();
        let rows = evaluate(&s, &q);
        assert_eq!(rows, vec![vec!["Alice".to_string()]]);
    }

    #[test]
    fn join_over_shared_variable() {
        let s = store();
        let q = parse(
            "SELECT ?person ?school WHERE { ?person graduatedFrom ?school . ?school type University . }",
        )
        .unwrap();
        let rows = evaluate(&s, &q);
        assert_eq!(rows.len(), 2); // Alice + Carol, both Harvard
        assert!(rows.iter().all(|r| r[1] == "Harvard_University"));
    }

    #[test]
    fn unknown_constant_yields_empty() {
        let s = store();
        let q = parse("SELECT ?x WHERE { ?x type Dragon . }").unwrap();
        assert!(evaluate(&s, &q).is_empty());
    }

    #[test]
    fn repeated_variable_within_triple() {
        let mut s = TripleStore::new();
        s.insert("a", "knows", "a");
        s.insert("a", "knows", "b");
        s.ensure_indexes();
        let q = parse("SELECT ?x WHERE { ?x knows ?x . }").unwrap();
        let rows = evaluate(&s, &q);
        assert_eq!(rows, vec![vec!["a".to_string()]]);
    }

    #[test]
    fn select_star_projects_all_variables_sorted() {
        let s = store();
        let q = parse("SELECT * WHERE { ?p graduatedFrom ?u . ?u type University }").unwrap();
        let rows = evaluate(&s, &q);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2); // ?p, ?u
    }

    #[test]
    fn select_star_has_columns_even_with_no_solutions() {
        // Regression: the projection used to be derived from
        // `solutions.first()`, so an empty solution set silently lost its
        // column structure. It now comes from the query's variables.
        let empty = TripleStore::new();
        let q = parse("SELECT * WHERE { ?p graduatedFrom ?u . ?u type University }").unwrap();
        assert_eq!(projection(&q), vec!["p".to_string(), "u".into()]);
        let mut s = TripleStore::new();
        s.insert("x", "unrelated", "y");
        s.ensure_indexes();
        assert!(evaluate(&s, &q).is_empty());
        let _ = empty; // no indexes built: projection needs no store
    }

    #[test]
    fn results_are_deduplicated() {
        let mut s = TripleStore::new();
        s.insert("a", "p", "b");
        s.insert("a", "p", "c");
        s.ensure_indexes();
        let q = parse("SELECT ?x WHERE { ?x p ?y . }").unwrap();
        assert_eq!(evaluate(&s, &q).len(), 1);
    }

    #[test]
    fn both_evaluators_agree_through_the_dispatcher() {
        let s = store();
        let q = parse("SELECT * WHERE { ?p graduatedFrom ?u . ?u type University }").unwrap();
        assert_eq!(evaluate_with(&s, &q, BgpEval::Lftj), evaluate_with(&s, &q, BgpEval::Reference));
    }

    #[test]
    fn scoped_override_wins_then_restores() {
        assert_eq!(current(), default_eval());
        {
            let _g = scoped(BgpEval::Reference);
            assert_eq!(current(), BgpEval::Reference);
            {
                let _g2 = scoped(BgpEval::Lftj);
                assert_eq!(current(), BgpEval::Lftj);
            }
            assert_eq!(current(), BgpEval::Reference);
        }
        assert_eq!(current(), default_eval());
    }

    #[test]
    fn eval_labels_roundtrip() {
        for e in [BgpEval::Lftj, BgpEval::Reference] {
            assert_eq!(BgpEval::parse(e.label()), Some(e));
        }
        assert_eq!(BgpEval::parse("nope"), None);
    }
}
