//! Process-wide metric handles for BGP evaluation (`uqsj_rdf_*`).
//!
//! Registered on the global registry at first use, same pattern as the
//! join cascade's handles: a serving process exposes its lifetime BGP
//! profile without threading stats through call sites. The q-error
//! histogram is the live counterpart of the estimator-accuracy
//! conformance check — estimate-vs-actual drift shows up here first.

use std::sync::OnceLock;

pub(crate) struct RdfObs {
    /// Queries answered by the leapfrog evaluator.
    pub queries_lftj: uqsj_obs::Counter,
    /// Queries answered by the nested-loop reference evaluator.
    pub queries_reference: uqsj_obs::Counter,
    /// Triple patterns across all evaluated queries.
    pub patterns: uqsj_obs::Counter,
    /// Trie cursor positionings (binary searches) in the leapfrog join.
    pub trie_seeks: uqsj_obs::Counter,
    /// Seeks attributed to a single pattern within one query.
    pub pattern_seeks: uqsj_obs::Histogram,
    /// Planner estimate vs. actual rows, as ⌈q-error × 100⌉ (so the
    /// 1.0 floor lands in the 100 bucket and ratios keep two decimals).
    pub estimate_qerror_x100: uqsj_obs::Histogram,
}

pub(crate) fn rdf_obs() -> &'static RdfObs {
    static OBS: OnceLock<RdfObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = uqsj_obs::global();
        RdfObs {
            queries_lftj: r.counter_with(
                "uqsj_rdf_bgp_queries_total",
                &[("eval", "lftj")],
                "BGP queries evaluated, by evaluator",
            ),
            queries_reference: r.counter_with(
                "uqsj_rdf_bgp_queries_total",
                &[("eval", "reference")],
                "BGP queries evaluated, by evaluator",
            ),
            patterns: r.counter(
                "uqsj_rdf_bgp_patterns_total",
                "triple patterns across all evaluated BGP queries",
            ),
            trie_seeks: r.counter(
                "uqsj_rdf_trie_seeks_total",
                "trie cursor positionings (binary searches) in the leapfrog join",
            ),
            pattern_seeks: r.histogram(
                "uqsj_rdf_pattern_seeks",
                "seeks attributed to one triple pattern within one query",
            ),
            estimate_qerror_x100: r.histogram(
                "uqsj_rdf_estimate_qerror_x100",
                "cardinality-estimator q-error times 100 (100 = perfect)",
            ),
        }
    })
}
