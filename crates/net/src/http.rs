//! HTTP/1.1 framing over a raw `TcpStream`: an incremental request
//! reader and a response writer. No async runtime — the server runs
//! blocking reads with a short poll timeout so workers stay responsive
//! to drain and deadline checks between reads.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Cap on the request line + headers section. Anything legitimate the
/// protocol sends fits in a fraction of this.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// The query string after `?` (empty when the target has none).
    pub query: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Did the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Value of one `key=value` query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection at a request boundary.
    Closed,
    /// No new bytes arrived within the stream's read timeout. Retryable:
    /// buffered partial input is kept for the next call.
    Timeout,
    /// Head or body exceeds its cap → respond 413 and close.
    TooLarge,
    /// Unparseable framing → respond 400 and close.
    Malformed(String),
    /// Transport error.
    Io(io::Error),
}

/// Incremental request reader over one connection. Bytes are buffered
/// across [`ConnReader::read_request`] calls, so a read timeout in the
/// middle of a slow request loses nothing.
#[derive(Debug)]
pub struct ConnReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ConnReader {
    pub fn new(stream: TcpStream) -> Self {
        Self { stream, buf: Vec::new() }
    }

    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Bytes of a partially received request are already buffered — a
    /// timeout now is mid-request, not an idle keep-alive gap.
    pub fn mid_request(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Read one full request, growing the buffer until the head and the
    /// `Content-Length` body are both complete.
    pub fn read_request(&mut self, max_body: usize) -> Result<Request, RecvError> {
        loop {
            if let Some(head_len) = find_head_end(&self.buf) {
                let head = std::str::from_utf8(&self.buf[..head_len])
                    .map_err(|_| RecvError::Malformed("head is not UTF-8".into()))?;
                let (method, path, query, headers) = parse_head(head)?;
                let body_len = match header_value(&headers, "content-length") {
                    Some(v) => v
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| RecvError::Malformed("bad Content-Length".into()))?,
                    None => 0,
                };
                if body_len > max_body {
                    return Err(RecvError::TooLarge);
                }
                let total = head_len + body_len;
                if self.buf.len() < total {
                    self.fill(total - self.buf.len())?;
                    continue;
                }
                let body = self.buf[head_len..total].to_vec();
                self.buf.drain(..total);
                return Ok(Request { method, path, query, headers, body });
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(RecvError::TooLarge);
            }
            self.fill(1)?;
        }
    }

    /// Read at least 1 and up to ~4 KiB more bytes into the buffer.
    fn fill(&mut self, _want: usize) -> Result<(), RecvError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Err(RecvError::Closed),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                Err(RecvError::Timeout)
            }
            Err(e) => Err(RecvError::Io(e)),
        }
    }
}

/// Byte length of the head including the blank line, if complete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
}

/// (method, path, query, headers) from a parsed request head.
type Head = (String, String, String, Vec<(String, String)>);

fn parse_head(head: &str) -> Result<Head, RecvError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(RecvError::Malformed(format!("bad request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed(format!("unsupported version {version:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the terminating blank line
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RecvError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    Ok((method.to_ascii_uppercase(), path, query, headers))
}

/// A response ready to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
    /// Send `Connection: close` and drop the connection afterwards.
    pub close: bool,
    /// When nonzero, echoed as an `X-Request-Id: {:016x}` response
    /// header — the request's trace id, accepted from the client or
    /// generated by the server.
    pub request_id: u64,
}

impl Response {
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            close: false,
            request_id: 0,
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
            request_id: 0,
        }
    }

    /// A JSON error envelope: `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        let body = crate::json::object([("error", message.into())]).render();
        Self::json(status, body)
    }

    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// The same response stamped with a request id to echo.
    pub fn with_request_id(mut self, request_id: u64) -> Self {
        self.request_id = request_id;
        self
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialize and send a response. Returns the transport error, if any —
/// callers treat a failed write as a dead connection.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let request_id = match response.request_id {
        0 => String::new(),
        id => format!("X-Request-Id: {id:016x}\r\n"),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        request_id,
        if response.close { "close" } else { "keep-alive" },
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// A connected socket pair via a loopback listener.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn reads_pipelined_requests_and_bodies() {
        let (mut client, server) = pair();
        let mut reader = ConnReader::new(server);
        client
            .write_all(
                b"POST /v1/answer?x=1 HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /healthz HTTP/1.1\r\n\r\n",
            )
            .expect("write");
        let first = reader.read_request(1024).expect("first request");
        assert_eq!(first.method, "POST");
        assert_eq!(first.path, "/v1/answer");
        assert_eq!(first.query, "x=1");
        assert_eq!(first.query_param("x"), Some("1"));
        assert_eq!(first.query_param("y"), None);
        assert_eq!(first.body, b"body");
        let second = reader.read_request(1024).expect("pipelined request");
        assert_eq!((second.method.as_str(), second.path.as_str()), ("GET", "/healthz"));
        assert!(second.query.is_empty());
        assert!(second.body.is_empty());
    }

    #[test]
    fn timeout_preserves_partial_input() {
        let (mut client, server) = pair();
        server.set_read_timeout(Some(std::time::Duration::from_millis(30))).expect("set timeout");
        let mut reader = ConnReader::new(server);
        client.write_all(b"GET /hea").expect("write prefix");
        assert!(matches!(reader.read_request(1024), Err(RecvError::Timeout)));
        assert!(reader.mid_request());
        client.write_all(b"lthz HTTP/1.1\r\n\r\n").expect("write rest");
        let req = reader.read_request(1024).expect("completed request");
        assert_eq!(req.path, "/healthz");
        assert!(!reader.mid_request());
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let (mut client, server) = pair();
        let mut reader = ConnReader::new(server);
        client
            .write_all(b"POST /v1/templates HTTP/1.1\r\nContent-Length: 99\r\n\r\n")
            .expect("write");
        assert!(matches!(reader.read_request(10), Err(RecvError::TooLarge)));

        let (mut client, server) = pair();
        let mut reader = ConnReader::new(server);
        client.write_all(b"NOT-HTTP\r\n\r\n").expect("write");
        assert!(matches!(reader.read_request(10), Err(RecvError::Malformed(_))));
    }

    #[test]
    fn response_wire_format() {
        let (mut client, mut server) = pair();
        let response = Response::error(429, "over capacity").closing();
        write_response(&mut server, &response).expect("write response");
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).expect("read");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Connection: close"));
        assert!(!text.contains("X-Request-Id"), "no id stamped, no header");
        assert!(text.ends_with("{\"error\":\"over capacity\"}"));
    }

    #[test]
    fn response_echoes_request_id() {
        let (mut client, mut server) = pair();
        let response = Response::text(200, "ok\n").with_request_id(0xabcd);
        write_response(&mut server, &response).expect("write response");
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).expect("read");
        assert!(text.contains("X-Request-Id: 000000000000abcd\r\n"), "{text}");
    }
}
