//! The server core: a listener thread feeding a bounded connection
//! queue, a fixed pool of worker threads draining it, and a drain
//! protocol for clean shutdown.
//!
//! Admission control is a state machine per connection:
//!
//! ```text
//!            queue full                     deadline passed at a
//!   accept ────────────► shed (429, close)  stage boundary
//!     │                                          │
//!     ▼ queue has room                           ▼
//!   queued ──► parsing ──► routing ──► answering ──► respond
//!                  │            │
//!                  └── 503 ◄────┘  (deadline checked between stages)
//! ```
//!
//! The deadline clock starts when the connection is *enqueued* — queue
//! wait is part of the budget, so a server drowning in backlog sheds
//! work it could never finish in time instead of answering into the
//! void. Keep-alive requests after the first get a fresh budget from
//! their first byte.
//!
//! **Drain** ([`ServerHandle::shutdown`]): stop accepting (listener
//! thread exits), mark draining (`/readyz` flips to 503), let workers
//! finish every queued and in-flight request, join all threads, then
//! fsync every shard's replica WALs. In-flight responses during a drain
//! carry `Connection: close`.

use crate::http::{write_response, ConnReader, RecvError, Response};
use crate::metrics::NetMetrics;
use crate::routes::{dispatch, route_name};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use uqsj_serve::ShardedQaServer;

/// Tuning for the HTTP front end.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accepted connections waiting for a worker before new arrivals are
    /// shed with 429.
    pub queue_depth: usize,
    /// Per-request budget from enqueue to response; checked at stage
    /// boundaries (parse → route → answer), overruns get 503.
    pub deadline: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// How long an idle keep-alive connection is held open.
    pub keep_alive_idle: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(2),
            max_body_bytes: 1 << 20,
            keep_alive_idle: Duration::from_secs(5),
        }
    }
}

/// A connection waiting for (or held by) a worker.
struct Conn {
    stream: TcpStream,
    enqueued: Instant,
}

/// State shared by the listener thread, the workers, and the handle.
struct Shared {
    qa: Arc<ShardedQaServer>,
    config: NetConfig,
    metrics: NetMetrics,
    queue: Mutex<VecDeque<Conn>>,
    /// Signals workers that the queue gained a connection or that a
    /// drain started.
    wake: Condvar,
    draining: AtomicBool,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts the drain protocol (threads are
/// detached); call `shutdown` for the graceful path.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// Bind `listen` and start the server. Returns once the listener and
/// worker threads are running.
pub fn serve(
    qa: Arc<ShardedQaServer>,
    listen: &str,
    config: NetConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(listen)?;
    serve_on(qa, listener, config)
}

/// Start the server on an already bound listener (tests bind port 0 and
/// read the assigned address back).
pub fn serve_on(
    qa: Arc<ShardedQaServer>,
    listener: TcpListener,
    config: NetConfig,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shared = Arc::new(Shared {
        qa,
        config,
        metrics: NetMetrics::new(),
        queue: Mutex::new(VecDeque::new()),
        wake: Condvar::new(),
        draining: AtomicBool::new(false),
    });
    let mut threads = Vec::with_capacity(config.workers.max(1) + 1);
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("uqsj-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?,
        );
    }
    for i in 0..config.workers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("uqsj-net-worker-{i}"))
                .spawn(move || worker_loop(&shared))?,
        );
    }
    Ok(ServerHandle { addr, shared, threads })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving core behind this listener.
    pub fn qa(&self) -> &Arc<ShardedQaServer> {
        &self.shared.qa
    }

    /// This server's `uqsj_net_*` metrics.
    pub fn metrics(&self) -> &NetMetrics {
        &self.shared.metrics
    }

    /// Is the server in its drain phase?
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Graceful drain: stop accepting, finish queued and in-flight
    /// requests, join every thread, fsync the shard WALs. Idempotent in
    /// effect; consumes the handle.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        self.shared.qa.sync_wals().map_err(io::Error::other)
    }
}

/// Poll interval for the nonblocking accept loop and for worker reads —
/// the upper bound on how stale a drain check can be.
const POLL: Duration = Duration::from_millis(25);

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.connections.inc();
                let _ = stream.set_nodelay(true);
                admit(shared, stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            // Transient accept errors (e.g. the peer reset before we got
            // to it) — keep serving.
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Enqueue an accepted connection, or shed it with 429 if the queue is
/// at capacity.
fn admit(shared: &Shared, mut stream: TcpStream) {
    let shed = {
        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.config.queue_depth {
            true
        } else {
            queue.push_back(Conn { stream, enqueued: Instant::now() });
            shared.wake.notify_one();
            return;
        }
    };
    debug_assert!(shed);
    shared.metrics.shed.inc();
    shared.metrics.responses(429).inc();
    let _ = write_response(&mut stream, &Response::error(429, "over capacity").closing());
}

fn worker_loop(shared: &Shared) {
    loop {
        let conn = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break conn;
                }
                if shared.draining() {
                    return; // queue fully drained, drain in progress
                }
                queue = shared.wake.wait(queue).expect("queue lock");
            }
        };
        handle_connection(shared, conn);
    }
}

/// Serve one connection until it closes, errors, idles out, or the
/// server drains.
fn handle_connection(shared: &Shared, conn: Conn) {
    let Conn { stream, enqueued } = conn;
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut reader = ConnReader::new(stream);
    // The first request's budget started at enqueue time: queue wait
    // counts against the deadline.
    let mut started = enqueued;
    let mut idle_since = Instant::now();
    loop {
        let request = match reader.read_request(shared.config.max_body_bytes) {
            Ok(request) => request,
            Err(RecvError::Timeout) => {
                if reader.mid_request() {
                    // A slow sender burns its own budget; cut it off once
                    // the deadline passes rather than holding the worker.
                    if started + shared.config.deadline <= Instant::now() {
                        shared.metrics.deadline_expired.inc();
                        respond(shared, &mut reader, "other", started, || {
                            Response::error(503, "deadline exceeded").closing()
                        });
                        return;
                    }
                } else {
                    started = Instant::now(); // budget starts at first byte
                    if shared.draining() || idle_since.elapsed() > shared.config.keep_alive_idle {
                        return; // idle keep-alive connection: just close
                    }
                }
                continue;
            }
            Err(RecvError::Closed) => return,
            Err(RecvError::TooLarge) => {
                respond(shared, &mut reader, "other", started, || {
                    Response::error(413, "request too large").closing()
                });
                return;
            }
            Err(RecvError::Malformed(why)) => {
                respond(shared, &mut reader, "other", started, || {
                    Response::error(400, &why).closing()
                });
                return;
            }
            Err(RecvError::Io(_)) => return,
        };
        // Boundary: request parsed, not yet routed.
        let deadline = started + shared.config.deadline;
        let route = route_name(&request.path);
        let close = request.wants_close() || shared.draining();
        // Every routed request gets a trace id — the client's
        // `X-Request-Id` if it sent one, else a fresh one — echoed back
        // in the response header and stamped on every span recorded
        // while the request context is installed.
        let trace_id = request
            .header("x-request-id")
            .map(uqsj_obs::ctx::TraceId::from_client)
            .unwrap_or_else(uqsj_obs::ctx::TraceId::generate);
        shared.metrics.in_flight.add(1);
        respond(shared, &mut reader, route, started, || {
            let ctx = uqsj_obs::ctx::RequestCtx::with_trace_id(trace_id).with_deadline(deadline);
            let _ctx = uqsj_obs::ctx::install(ctx);
            let _span = uqsj_obs::span("net.request");
            let mut response = if Instant::now() >= deadline {
                shared.metrics.deadline_expired.inc();
                Response::error(503, "deadline exceeded")
            } else {
                dispatch(&shared.qa, &shared.metrics, &request, shared.draining(), deadline)
            };
            response.close |= close;
            response.with_request_id(trace_id.0)
        });
        shared.metrics.in_flight.add(-1);
        if close {
            return;
        }
        // Next keep-alive request: fresh budget, fresh idle window.
        started = Instant::now();
        idle_since = Instant::now();
    }
}

/// Build, record, and write one response. (A closure so the in-flight
/// gauge and latency clock wrap the dispatch itself.)
fn respond(
    shared: &Shared,
    reader: &mut ConnReader,
    route: &str,
    started: Instant,
    build: impl FnOnce() -> Response,
) {
    let response = build();
    shared.metrics.record(route, response.status, started.elapsed());
    let _ = write_response(reader.stream_mut(), &response);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = NetConfig::default();
        assert!(c.workers >= 1);
        assert!(c.queue_depth >= c.workers);
        assert!(c.deadline > Duration::ZERO);
    }
}
