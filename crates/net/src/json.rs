//! A minimal JSON value model with a strict parser and a writer.
//!
//! The workspace's `serde` resolves to the offline no-op shim (the build
//! has no registry access), so the wire protocol hand-rolls its JSON the
//! same way `uqsj-obs` hand-rolls its snapshot export. The subset is
//! full JSON minus one liberty: numbers are held as `f64` (every value
//! the protocol carries — counts, latencies, probabilities — fits).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Object keys are sorted (BTreeMap) so rendering is deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object member by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a usize, if this is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly (no whitespace). Non-finite numbers render as
    /// `null`, matching what JSON can express.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Value::Array(iter.into_iter().collect())
    }
}

/// Build an object from `(key, value)` pairs — the writer-side idiom:
/// `object([("added", added.into()), ("count", n.into())])`.
pub fn object<const N: usize>(pairs: [(&str, Value); N]) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed, with the byte offset it failed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0, depth: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting cap: the protocol's documents are ~3 levels deep; 64 guards
/// against stack exhaustion from adversarial bodies.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("document nests too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits, advancing past them.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.err("invalid unicode escape"))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Value::Number)
            .ok_or_else(|| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_protocol_shapes() {
        let doc = r#"{"questions":["Who?","Which \"quoted\" one?"],"threads":4,"phi":0.75}"#;
        let v = parse(doc).expect("parses");
        assert_eq!(v.get("threads").and_then(Value::as_usize), Some(4));
        assert_eq!(v.get("phi").and_then(Value::as_f64), Some(0.75));
        let qs = v.get("questions").and_then(Value::as_array).expect("array");
        assert_eq!(qs[1].as_str(), Some("Which \"quoted\" one?"));
        // Render → reparse is identity.
        assert_eq!(parse(&v.render()).expect("reparses"), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "01x",
            "\"\\q\"",
            "\"unterminated",
            "{} trailing",
            "\"\\ud800\"",
            "1e",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn depth_cap_rejects_adversarial_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn escapes_render_safely() {
        let v = Value::String("a\"b\\c\nd\u{1}".into());
        assert_eq!(v.render(), r#""a\"b\\c\nd\u0001""#);
        assert_eq!(parse(&v.render()).expect("reparses"), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""\ud83d\ude00""#).expect("parses");
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn numbers_render_integers_cleanly() {
        assert_eq!(Value::Number(3.0).render(), "3");
        assert_eq!(Value::Number(0.5).render(), "0.5");
        assert_eq!(Value::Number(f64::NAN).render(), "null");
    }

    #[test]
    fn object_builder_sorts_keys() {
        let v = object([("b", 1usize.into()), ("a", 2usize.into())]);
        assert_eq!(v.render(), r#"{"a":2,"b":1}"#);
    }
}
