//! The `uqsj_net_*` metric families: admission control, per-route
//! traffic, and request latency for the HTTP front end. One registry per
//! server instance (same pattern as `ServeMetrics`), concatenated with
//! the serving and global registries by `GET /metrics`.

use std::time::Duration;
use uqsj_obs::{Counter, Gauge, Histogram, Registry};

/// Metrics owned by one [`crate::ServerHandle`].
#[derive(Debug)]
pub struct NetMetrics {
    registry: Registry,
    /// Connections accepted (sheds included).
    pub connections: Counter,
    /// Connections turned away with 429 because the accept queue was full.
    pub shed: Counter,
    /// Requests that blew their deadline at a stage boundary (503).
    pub deadline_expired: Counter,
    /// Templates accepted through `POST /v1/templates`.
    pub ingested_templates: Counter,
    /// Hits on the `/debug/*` introspection routes.
    pub debug_requests: Counter,
    /// Requests currently being parsed or answered.
    pub in_flight: Gauge,
    /// End-to-end request latency (queue wait included), microseconds.
    pub request_us: Histogram,
}

impl Default for NetMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl NetMetrics {
    pub fn new() -> Self {
        let registry = Registry::new();
        let connections =
            registry.counter("uqsj_net_connections_total", "TCP connections accepted");
        let shed =
            registry.counter("uqsj_net_shed_total", "connections rejected with 429 (queue full)");
        let deadline_expired = registry.counter(
            "uqsj_net_deadline_expired_total",
            "requests abandoned at a stage boundary after their deadline (503)",
        );
        let ingested_templates = registry.counter(
            "uqsj_net_ingested_templates_total",
            "templates accepted via the ingest route",
        );
        let debug_requests =
            registry.counter("uqsj_net_debug_requests_total", "requests to the /debug/* routes");
        let in_flight = registry.gauge("uqsj_net_in_flight", "requests currently in flight");
        let request_us =
            registry.histogram("uqsj_net_request_us", "request latency including queue wait, us");
        Self {
            registry,
            connections,
            shed,
            deadline_expired,
            ingested_templates,
            debug_requests,
            in_flight,
            request_us,
        }
    }

    /// Per-route request counter. Unknown paths all land on `other`
    /// (label values must be static, and an unbounded label set from
    /// attacker-chosen paths would bloat the registry anyway).
    pub fn requests(&self, route: &str) -> Counter {
        let labels: uqsj_obs::registry::Labels = match route {
            "answer" => &[("route", "answer")],
            "templates" => &[("route", "templates")],
            "metrics" => &[("route", "metrics")],
            "healthz" => &[("route", "healthz")],
            "readyz" => &[("route", "readyz")],
            "debug" => &[("route", "debug")],
            _ => &[("route", "other")],
        };
        self.registry.counter_with("uqsj_net_requests_total", labels, "requests by route")
    }

    /// Response counter by status class.
    pub fn responses(&self, status: u16) -> Counter {
        let labels: uqsj_obs::registry::Labels = match status / 100 {
            2 => &[("class", "2xx")],
            3 => &[("class", "3xx")],
            4 => &[("class", "4xx")],
            _ => &[("class", "5xx")],
        };
        self.registry.counter_with("uqsj_net_responses_total", labels, "responses by status class")
    }

    /// Record one finished request.
    pub fn record(&self, route: &str, status: u16, elapsed: Duration) {
        self.requests(route).inc();
        self.responses(status).inc();
        self.request_us.observe_duration(elapsed);
    }

    /// This server's `uqsj_net_*` registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_render_with_route_and_class_labels() {
        let m = NetMetrics::new();
        m.record("answer", 200, Duration::from_micros(150));
        m.record("unknown-path", 404, Duration::from_micros(20));
        m.shed.inc();
        let text = m.registry().render_prometheus();
        assert!(text.contains("uqsj_net_requests_total{route=\"answer\"} 1"));
        assert!(text.contains("uqsj_net_requests_total{route=\"other\"} 1"));
        assert!(text.contains("uqsj_net_responses_total{class=\"2xx\"} 1"));
        assert!(text.contains("uqsj_net_responses_total{class=\"4xx\"} 1"));
        assert!(text.contains("uqsj_net_shed_total 1"));
        assert!(text.contains("uqsj_net_request_us_count 2"));
    }
}
