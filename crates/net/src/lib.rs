//! uqsj-net: the HTTP/JSON wire protocol over a sharded Q/A server.
//!
//! Everything below `uqsj-serve` treats the template store as an
//! in-process library; this crate puts a network in front of it with no
//! runtime or framework — a hand-rolled HTTP/1.1 server on
//! `std::net::TcpListener`, a fixed worker-thread pool, and a JSON codec
//! written against [`json::Value`] (the workspace's vendored `serde` is
//! a no-op shim, so nothing derives).
//!
//! The pieces:
//!
//! - [`http`]: incremental request reader + response writer with size
//!   caps and keep-alive.
//! - [`json`]: strict parser / deterministic writer for the protocol
//!   bodies.
//! - [`routes`]: `POST /v1/answer` (single and batch), `POST
//!   /v1/templates` (journaled ingest through the sharded store's
//!   replica WALs), `GET /metrics` (Prometheus text: `uqsj_net_*` +
//!   `uqsj_serve_*`/`uqsj_shard_*` + the process-global families),
//!   `GET /healthz`, `GET /readyz`.
//! - [`server`]: bounded accept queue with 429 load-shedding, a
//!   per-request deadline checked at stage boundaries (503 on overrun),
//!   and graceful drain — stop accepting, finish in-flight work, fsync
//!   the shard WALs.
//! - [`client`]: a minimal blocking client for benches and tests.
//!
//! Start one with [`serve`] (or [`serve_on`] for a pre-bound listener):
//!
//! ```no_run
//! use std::sync::Arc;
//! use uqsj_serve::{ServeConfig, ShardedQaServer};
//!
//! let qa = Arc::new(ShardedQaServer::new(
//!     uqsj_template::TemplateLibrary::new(),
//!     uqsj_nlp::Lexicon::default(),
//!     uqsj_rdf::TripleStore::new(),
//!     4,
//!     ServeConfig::default(),
//! ));
//! let handle = uqsj_net::serve(qa, "127.0.0.1:8080", uqsj_net::NetConfig::default())?;
//! println!("listening on {}", handle.local_addr());
//! handle.shutdown()?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod routes;
pub mod server;

pub use client::{Client, ClientResponse};
pub use http::{Request, Response};
pub use json::Value;
pub use metrics::NetMetrics;
pub use server::{serve, serve_on, NetConfig, ServerHandle};
