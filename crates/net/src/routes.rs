//! Route dispatch: the five endpoints of the wire protocol.
//!
//! | route              | method | body                                       |
//! |--------------------|--------|--------------------------------------------|
//! | `/v1/answer`       | POST   | `{"question": "..."}` or `{"questions": [...], "threads": N}` |
//! | `/v1/templates`    | POST   | `{"templates": "<uqsj_template::io text>"}` |
//! | `/metrics`         | GET    | — (Prometheus text)                        |
//! | `/healthz`         | GET    | — (liveness: always 200 while running)     |
//! | `/readyz`          | GET    | — (readiness: 503 once draining)           |

use crate::http::{Request, Response};
use crate::json::{self, object, Value};
use crate::metrics::NetMetrics;
use std::time::Instant;
use uqsj_serve::ShardedQaServer;
use uqsj_template::QaOutcome;

/// Stable route name for metric labels.
pub fn route_name(path: &str) -> &'static str {
    match path {
        "/v1/answer" => "answer",
        "/v1/templates" => "templates",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/readyz" => "readyz",
        _ => "other",
    }
}

/// Handle one parsed request. `deadline` is the request's drop-dead
/// instant: the expensive stages (answering, ingest) re-check it at
/// their boundary and give up with 503 rather than start work whose
/// caller has already timed out.
pub fn dispatch(
    qa: &ShardedQaServer,
    metrics: &NetMetrics,
    request: &Request,
    draining: bool,
    deadline: Instant,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if draining {
                Response::error(503, "draining")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/metrics") => {
            let mut text = metrics.registry().render_prometheus();
            text.push_str(&qa.metrics_registry().render_prometheus());
            text.push_str(&uqsj_obs::global().render_prometheus());
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: text.into_bytes(),
                close: false,
            }
        }
        ("POST", "/v1/answer") => answer(qa, metrics, &request.body, deadline),
        ("POST", "/v1/templates") => ingest(qa, metrics, &request.body, deadline),
        (_, "/healthz" | "/readyz" | "/metrics" | "/v1/answer" | "/v1/templates") => {
            Response::error(405, "method not allowed")
        }
        _ => Response::error(404, "no such route"),
    }
}

/// Deadline gate at a stage boundary: `Some(503)` if the budget is gone.
fn expired(metrics: &NetMetrics, deadline: Instant) -> Option<Response> {
    if Instant::now() >= deadline {
        metrics.deadline_expired.inc();
        Some(Response::error(503, "deadline exceeded"))
    } else {
        None
    }
}

fn parse_body(body: &[u8]) -> Result<Value, Response> {
    let text = std::str::from_utf8(body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    json::parse(text).map_err(|e| Response::error(400, &format!("invalid JSON: {e}")))
}

/// One outcome as a JSON object. `shard`/`shards_touched` are present
/// only on the single-question path (the batch path does not track them).
fn outcome_json(o: &QaOutcome, shard: Option<usize>, touched: Option<usize>) -> Value {
    let mut fields = vec![
        ("answers".to_owned(), o.answers.iter().map(|a| Value::from(a.as_str())).collect()),
        (
            "sparql".to_owned(),
            o.sparql.as_ref().map_or(Value::Null, |q| Value::from(q.to_string())),
        ),
        ("template_index".to_owned(), o.template_index.map_or(Value::Null, Value::from)),
        ("phi".to_owned(), Value::from(o.phi)),
    ];
    if let Some(s) = shard {
        fields.push(("shard".to_owned(), Value::from(s)));
    }
    if let Some(t) = touched {
        fields.push(("shards_touched".to_owned(), Value::from(t)));
    }
    Value::Object(fields.into_iter().collect())
}

fn answer(qa: &ShardedQaServer, metrics: &NetMetrics, body: &[u8], deadline: Instant) -> Response {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(resp) => return resp,
    };
    // Boundary: parsing done, answering not yet started.
    if let Some(resp) = expired(metrics, deadline) {
        return resp;
    }
    if let Some(question) = doc.get("question").and_then(Value::as_str) {
        let answered = qa.answer(question);
        let body = outcome_json(&answered.outcome, answered.shard, Some(answered.shards_touched));
        return Response::json(200, body.render());
    }
    if let Some(items) = doc.get("questions").and_then(Value::as_array) {
        let mut questions = Vec::with_capacity(items.len());
        for item in items {
            match item.as_str() {
                Some(q) => questions.push(q.to_owned()),
                None => return Response::error(400, "questions must be an array of strings"),
            }
        }
        let threads = match doc.get("threads") {
            None => 1,
            Some(v) => match v.as_usize() {
                Some(t) => t,
                None => return Response::error(400, "threads must be a non-negative integer"),
            },
        };
        let outcomes = qa.answer_batch(&questions, threads);
        let results: Value = outcomes.iter().map(|o| outcome_json(o, None, None)).collect();
        return Response::json(200, object([("results", results)]).render());
    }
    Response::error(400, "body needs a \"question\" string or \"questions\" array")
}

fn ingest(qa: &ShardedQaServer, metrics: &NetMetrics, body: &[u8], deadline: Instant) -> Response {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(resp) => return resp,
    };
    let Some(text) = doc.get("templates").and_then(Value::as_str) else {
        return Response::error(400, "body needs a \"templates\" string (template text format)");
    };
    let library = match uqsj_template::io::from_text(text) {
        Ok(library) => library,
        Err(e) => return Response::error(400, &format!("invalid template text: {e}")),
    };
    // Boundary: decoding done, the journaled ingest not yet started.
    if let Some(resp) = expired(metrics, deadline) {
        return resp;
    }
    let offered = library.len();
    match qa.insert_templates(library.templates().iter().cloned()) {
        Ok(added) => {
            metrics.ingested_templates.add(added as u64);
            let body = object([
                ("added", added.into()),
                ("offered", offered.into()),
                ("count", qa.template_count().into()),
            ]);
            Response::json(200, body.render())
        }
        Err(e) => Response::error(500, &format!("ingest failed: {e}")),
    }
}
