//! Route dispatch: the endpoints of the wire protocol.
//!
//! | route              | method | body                                       |
//! |--------------------|--------|--------------------------------------------|
//! | `/v1/answer`       | POST   | `{"question": "...", "explain": bool}` or `{"questions": [...], "threads": N}` |
//! | `/v1/templates`    | POST   | `{"templates": "<uqsj_template::io text>"}` |
//! | `/metrics`         | GET    | — (Prometheus text)                        |
//! | `/healthz`         | GET    | — (liveness: always 200 while running)     |
//! | `/readyz`          | GET    | — (readiness: 503 once draining)           |
//! | `/debug/slow`      | GET    | — (worst-N query reports, slowest first)   |
//! | `/debug/trace`     | GET    | — (`?id=<16-hex>`: that request's spans)   |
//! | `/debug/cascade`   | GET    | — (attached cascade planners' live plans)  |
//! | `/debug/cache`     | GET    | — (answer-cache occupancy and generation)  |

use crate::http::{Request, Response};
use crate::json::{self, object, Value};
use crate::metrics::NetMetrics;
use std::time::Instant;
use uqsj_serve::ShardedQaServer;
use uqsj_template::QaOutcome;

/// Stable route name for metric labels. Every `/debug/*` path shares one
/// label value — the set is bounded by design.
pub fn route_name(path: &str) -> &'static str {
    if path.starts_with("/debug/") {
        return "debug";
    }
    match path {
        "/v1/answer" => "answer",
        "/v1/templates" => "templates",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        "/readyz" => "readyz",
        _ => "other",
    }
}

/// Handle one parsed request. `deadline` is the request's drop-dead
/// instant: the expensive stages (answering, ingest) re-check it at
/// their boundary and give up with 503 rather than start work whose
/// caller has already timed out.
pub fn dispatch(
    qa: &ShardedQaServer,
    metrics: &NetMetrics,
    request: &Request,
    draining: bool,
    deadline: Instant,
) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/readyz") => {
            if draining {
                Response::error(503, "draining")
            } else {
                Response::text(200, "ready\n")
            }
        }
        ("GET", "/metrics") => {
            let mut text = metrics.registry().render_prometheus();
            text.push_str(&qa.metrics_registry().render_prometheus());
            text.push_str(&uqsj_obs::global().render_prometheus());
            Response {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: text.into_bytes(),
                close: false,
                request_id: 0,
            }
        }
        ("POST", "/v1/answer") => answer(qa, metrics, &request.body, deadline),
        ("POST", "/v1/templates") => ingest(qa, metrics, &request.body, deadline),
        ("GET", "/debug/slow") => {
            metrics.debug_requests.inc();
            Response::json(200, format!("{{\"slow\":{}}}", qa.slow_log().to_json()))
        }
        ("GET", "/debug/trace") => {
            metrics.debug_requests.inc();
            debug_trace(request)
        }
        ("GET", "/debug/cascade") => {
            metrics.debug_requests.inc();
            debug_cascade(qa)
        }
        ("GET", "/debug/cache") => {
            metrics.debug_requests.inc();
            let (entries, capacity, generation) = qa.cache_debug();
            let body = object([
                ("entries", entries.into()),
                ("capacity", capacity.into()),
                ("generation", Value::from(generation as f64)),
            ]);
            Response::json(200, body.render())
        }
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/v1/answer" | "/v1/templates" | "/debug/slow"
            | "/debug/trace" | "/debug/cascade" | "/debug/cache",
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such route"),
    }
}

/// `GET /debug/trace?id=<16-hex>`: the flight-recorder events stamped
/// with that trace id, oldest first.
fn debug_trace(request: &Request) -> Response {
    let Some(id) = request.query_param("id") else {
        return Response::error(400, "missing ?id=<16-hex trace id>");
    };
    let Ok(trace_id) = u64::from_str_radix(id.trim(), 16) else {
        return Response::error(400, "id must be a hex trace id");
    };
    let events = uqsj_obs::trace::recorder().events_for(trace_id);
    let mut body = format!("{{\"trace_id\":\"{trace_id:016x}\",\"events\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"name\":");
        uqsj_obs::push_json_string(&mut body, e.name);
        body.push_str(&format!(
            ",\"start_us\":{},\"dur_us\":{},\"tid\":{},\"depth\":{}}}",
            e.start_us, e.dur_us, e.tid, e.depth
        ));
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// `GET /debug/cascade`: live plan + estimate snapshots of every cascade
/// planner attached to the serving core.
fn debug_cascade(qa: &ShardedQaServer) -> Response {
    let mut body = String::from("{\"sources\":[");
    for (i, (label, report)) in qa.cascade_reports().iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str("{\"name\":");
        uqsj_obs::push_json_string(&mut body, label);
        body.push_str(",\"cascade\":");
        body.push_str(report.to_json("").trim());
        body.push('}');
    }
    body.push_str("]}");
    Response::json(200, body)
}

/// Deadline gate at a stage boundary: `Some(503)` if the budget is gone.
fn expired(metrics: &NetMetrics, deadline: Instant) -> Option<Response> {
    if Instant::now() >= deadline {
        metrics.deadline_expired.inc();
        Some(Response::error(503, "deadline exceeded"))
    } else {
        None
    }
}

fn parse_body(body: &[u8]) -> Result<Value, Response> {
    let text = std::str::from_utf8(body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    json::parse(text).map_err(|e| Response::error(400, &format!("invalid JSON: {e}")))
}

/// One outcome as a JSON object. `shard`/`shards_touched` are present
/// only on the single-question path (the batch path does not track them).
fn outcome_json(o: &QaOutcome, shard: Option<usize>, touched: Option<usize>) -> Value {
    let mut fields = vec![
        ("answers".to_owned(), o.answers.iter().map(|a| Value::from(a.as_str())).collect()),
        (
            "sparql".to_owned(),
            o.sparql.as_ref().map_or(Value::Null, |q| Value::from(q.to_string())),
        ),
        ("template_index".to_owned(), o.template_index.map_or(Value::Null, Value::from)),
        ("phi".to_owned(), Value::from(o.phi)),
    ];
    if let Some(s) = shard {
        fields.push(("shard".to_owned(), Value::from(s)));
    }
    if let Some(t) = touched {
        fields.push(("shards_touched".to_owned(), Value::from(t)));
    }
    Value::Object(fields.into_iter().collect())
}

fn answer(qa: &ShardedQaServer, metrics: &NetMetrics, body: &[u8], deadline: Instant) -> Response {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(resp) => return resp,
    };
    // Boundary: parsing done, answering not yet started.
    if let Some(resp) = expired(metrics, deadline) {
        return resp;
    }
    // The batch path ignores `explain`: per-question reports across a
    // thread pool would need per-item context plumbing the protocol does
    // not promise; ask one question at a time for an EXPLAIN.
    let explain = doc.get("explain").and_then(Value::as_bool).unwrap_or(false);
    if let Some(question) = doc.get("question").and_then(Value::as_str) {
        if explain {
            return answer_explained(qa, question);
        }
        let answered = qa.answer(question);
        let body = outcome_json(&answered.outcome, answered.shard, Some(answered.shards_touched));
        return Response::json(200, body.render());
    }
    if let Some(items) = doc.get("questions").and_then(Value::as_array) {
        let mut questions = Vec::with_capacity(items.len());
        for item in items {
            match item.as_str() {
                Some(q) => questions.push(q.to_owned()),
                None => return Response::error(400, "questions must be an array of strings"),
            }
        }
        let threads = match doc.get("threads") {
            None => 1,
            Some(v) => match v.as_usize() {
                Some(t) => t,
                None => return Response::error(400, "threads must be a non-negative integer"),
            },
        };
        let outcomes = qa.answer_batch(&questions, threads);
        let results: Value = outcomes.iter().map(|o| outcome_json(o, None, None)).collect();
        return Response::json(200, object([("results", results)]).render());
    }
    Response::error(400, "body needs a \"question\" string or \"questions\" array")
}

/// Single-question answer with a structured EXPLAIN report attached
/// under an `"explain"` key. The report carries the same trace id the
/// response echoes in `X-Request-Id`, so `/debug/trace?id=` finds its
/// spans.
fn answer_explained(qa: &ShardedQaServer, question: &str) -> Response {
    // Flip `explain` on the installed request context (same trace id)
    // so deeper stages see `explain_requested()` while answering.
    let ctx = uqsj_obs::ctx::current().unwrap_or_default().with_explain(true);
    let _ctx = uqsj_obs::ctx::install(ctx);
    qa.serve_metrics().record_explain();
    let (answered, report) = qa.answer_explained(question);
    let mut body =
        outcome_json(&answered.outcome, answered.shard, Some(answered.shards_touched)).render();
    // Splice the hand-rendered report in as a raw value: an object render
    // always ends with '}', so swap it for `,"explain":<report>}`.
    body.pop();
    body.push_str(",\"explain\":");
    body.push_str(&report.to_json());
    body.push('}');
    Response::json(200, body)
}

fn ingest(qa: &ShardedQaServer, metrics: &NetMetrics, body: &[u8], deadline: Instant) -> Response {
    let doc = match parse_body(body) {
        Ok(doc) => doc,
        Err(resp) => return resp,
    };
    let Some(text) = doc.get("templates").and_then(Value::as_str) else {
        return Response::error(400, "body needs a \"templates\" string (template text format)");
    };
    let library = match uqsj_template::io::from_text(text) {
        Ok(library) => library,
        Err(e) => return Response::error(400, &format!("invalid template text: {e}")),
    };
    // Boundary: decoding done, the journaled ingest not yet started.
    if let Some(resp) = expired(metrics, deadline) {
        return resp;
    }
    let offered = library.len();
    match qa.insert_templates(library.templates().iter().cloned()) {
        Ok(added) => {
            metrics.ingested_templates.add(added as u64);
            let body = object([
                ("added", added.into()),
                ("offered", offered.into()),
                ("count", qa.template_count().into()),
            ]);
            Response::json(200, body.render())
        }
        Err(e) => Response::error(500, &format!("ingest failed: {e}")),
    }
}
