//! A minimal blocking HTTP/1.1 client — enough protocol for the load
//! bench, the CI smoke test, and the e2e tests to drive a live server
//! over real sockets. Keep-alive by default; callers reconnect when a
//! request fails or the server answered with `Connection: close`.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One keep-alive connection to a server.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    stream: TcpStream,
    buf: Vec<u8>,
}

/// A decoded response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    pub status: u16,
    pub body: String,
    /// Server asked to close; the next request must reconnect.
    pub close: bool,
    /// The `X-Request-Id` header, if the server echoed one (16 lowercase
    /// hex digits).
    pub request_id: Option<String>,
}

impl Client {
    /// Connect with a read/write timeout.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(Self { addr, stream, buf: Vec::new() })
    }

    /// Drop the current connection and dial a new one.
    pub fn reconnect(&mut self, timeout: Duration) -> io::Result<()> {
        *self = Self::connect(self.addr, timeout)?;
        Ok(())
    }

    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    pub fn post(&mut self, path: &str, json_body: &str) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(json_body))
    }

    /// Send one request and read the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        self.request_with_headers(method, path, body, &[])
    }

    /// Send one request with extra headers (e.g. `X-Request-Id`) and
    /// read the full response.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        headers: &[(&str, &str)],
    ) -> io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: uqsj\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<ClientResponse> {
        loop {
            if let Some(head_len) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head_len = head_len + 4;
                let head = String::from_utf8_lossy(&self.buf[..head_len]).into_owned();
                let status: u16 = head
                    .split_whitespace()
                    .nth(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| io::Error::other(format!("bad status line: {head:?}")))?;
                let lower = head.to_ascii_lowercase();
                let content_length: usize = lower
                    .lines()
                    .find_map(|l| l.strip_prefix("content-length:"))
                    .and_then(|v| v.trim().parse().ok())
                    .ok_or_else(|| io::Error::other("response without Content-Length"))?;
                let close = lower.lines().any(|l| l.trim() == "connection: close");
                let request_id = lower
                    .lines()
                    .find_map(|l| l.strip_prefix("x-request-id:"))
                    .map(|v| v.trim().to_owned());
                let total = head_len + content_length;
                while self.buf.len() < total {
                    self.fill()?;
                }
                let body = String::from_utf8_lossy(&self.buf[head_len..total]).into_owned();
                self.buf.drain(..total);
                return Ok(ClientResponse { status, body, close, request_id });
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk)? {
            0 => Err(io::Error::new(io::ErrorKind::UnexpectedEof, "server closed connection")),
            n => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
        }
    }
}
