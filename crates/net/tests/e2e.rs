//! End-to-end tests over real loopback sockets: a live [`uqsj_net`]
//! server in front of a sharded store, driven by the crate's own
//! blocking client.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;
use uqsj_net::{json, Client, NetConfig};
use uqsj_serve::{ServeConfig, ShardedQaServer};
use uqsj_sparql::{SparqlQuery, Term, Triple};
use uqsj_template::template::{slot_term, SlotBinding};
use uqsj_template::{Template, TemplateLibrary};

const SLOT: &str = "<_>";

/// "Which <_> graduated from <_> ?" against `predicate`.
fn graduated_template(predicate: &str, confidence: f64) -> Template {
    let sparql = SparqlQuery {
        select: vec!["x".into()],
        triples: vec![
            Triple {
                subject: Term::Var("x".into()),
                predicate: Term::Iri("type".into()),
                object: slot_term(0),
            },
            Triple {
                subject: Term::Var("x".into()),
                predicate: Term::Iri(predicate.into()),
                object: slot_term(1),
            },
        ],
    };
    Template::new(
        ["Which", SLOT, "graduated", "from", SLOT, "?"].map(String::from).to_vec(),
        sparql,
        vec![SlotBinding::Bound, SlotBinding::Bound],
        confidence,
    )
}

fn sharded(seed: Vec<Template>, shards: usize) -> Arc<ShardedQaServer> {
    let mut lexicon = uqsj_nlp::lexicon::paper_lexicon();
    lexicon.add_class("physicist", "Physicist");
    let mut triples = uqsj_rdf::TripleStore::new();
    triples.insert("Alice", "type", "Physicist");
    triples.insert("Alice", "graduatedFrom", "Carnegie_Mellon_University");
    triples.ensure_indexes();
    let mut library = TemplateLibrary::new();
    for t in seed {
        library.add(t);
    }
    Arc::new(ShardedQaServer::new(
        library,
        lexicon,
        triples,
        shards,
        ServeConfig { min_phi: 1.0, cache_capacity: 64, bgp_eval: None },
    ))
}

fn start(qa: Arc<ShardedQaServer>, config: NetConfig) -> (uqsj_net::ServerHandle, Client) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = uqsj_net::serve_on(qa, listener, config).expect("start server");
    let client = Client::connect(handle.local_addr(), Duration::from_secs(5)).expect("connect");
    (handle, client)
}

#[test]
fn answers_over_the_wire() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 3);
    let (handle, mut client) = start(qa, NetConfig::default());

    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    assert_eq!(client.get("/readyz").expect("readyz").status, 200);

    let resp = client
        .post("/v1/answer", r#"{"question": "Which physicist graduated from CMU?"}"#)
        .expect("answer");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let doc = json::parse(&resp.body).expect("json body");
    let answers = doc.get("answers").and_then(json::Value::as_array).expect("answers");
    assert_eq!(answers[0].as_str(), Some("Alice"));
    assert!(doc.get("sparql").and_then(json::Value::as_str).is_some());
    assert!(doc.get("shards_touched").and_then(json::Value::as_usize).is_some());

    // Keep-alive: the same connection serves the next request.
    assert!(!resp.close);
    let again = client
        .post(
            "/v1/answer",
            r#"{"questions": ["Which physicist graduated from CMU?", "gibberish"], "threads": 2}"#,
        )
        .expect("batch answer");
    assert_eq!(again.status, 200);
    let doc = json::parse(&again.body).expect("json body");
    let results = doc.get("results").and_then(json::Value::as_array).expect("results");
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].get("answers").and_then(json::Value::as_array).map(<[_]>::len), Some(1));

    handle.shutdown().expect("drain");
}

#[test]
fn ingest_over_the_wire_updates_answers() {
    // Seed with a template whose predicate the KB never uses.
    let qa = sharded(vec![graduated_template("wrongPredicate", 0.5)], 4);
    let (handle, mut client) = start(qa, NetConfig::default());

    let question = r#"{"question": "Which physicist graduated from CMU?"}"#;
    let stale = client.post("/v1/answer", question).expect("stale answer");
    let doc = json::parse(&stale.body).expect("json");
    assert_eq!(
        doc.get("answers").and_then(json::Value::as_array).map(<[_]>::len),
        Some(0),
        "seed template must not answer"
    );

    // Ship a better template through the ingest route (text format,
    // carried as a JSON string).
    let mut library = TemplateLibrary::new();
    library.add(graduated_template("graduatedFrom", 0.99));
    let body = json::object([("templates", uqsj_template::io::to_text(&library).as_str().into())]);
    let resp = client.post("/v1/templates", &body.render()).expect("ingest");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let doc = json::parse(&resp.body).expect("json");
    assert_eq!(doc.get("added").and_then(json::Value::as_usize), Some(1));
    assert_eq!(doc.get("count").and_then(json::Value::as_usize), Some(2));

    // The cached stale outcome must not survive the ingest.
    let fresh = client.post("/v1/answer", question).expect("fresh answer");
    let doc = json::parse(&fresh.body).expect("json");
    let answers = doc.get("answers").and_then(json::Value::as_array).expect("answers");
    assert_eq!(answers[0].as_str(), Some("Alice"), "ingested template must win");

    let metrics = client.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("uqsj_net_ingested_templates_total 1"));
    assert!(metrics.body.contains("uqsj_net_requests_total{route=\"answer\"}"));
    assert!(metrics.body.contains("uqsj_shard_count 4"));
    assert!(metrics.body.contains("uqsj_serve_"));

    handle.shutdown().expect("drain");
}

#[test]
fn rejects_bad_requests_with_the_right_status() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 2);
    let config = NetConfig { max_body_bytes: 256, ..NetConfig::default() };
    let (handle, mut client) = start(qa, config);

    // Unknown route and wrong method.
    assert_eq!(client.get("/nope").expect("404").status, 404);
    assert_eq!(client.get("/v1/answer").expect("405").status, 405);

    // Malformed and mis-shaped JSON.
    assert_eq!(client.post("/v1/answer", "{not json").expect("400").status, 400);
    assert_eq!(client.post("/v1/answer", r#"{"threads": 2}"#).expect("400").status, 400);
    assert_eq!(client.post("/v1/answer", r#"{"questions": [1,2]}"#).expect("400").status, 400);
    assert_eq!(
        client.post("/v1/templates", r##"{"templates": "#garbage"}"##).expect("400").status,
        400
    );

    // Oversized body: 413 and the connection closes.
    let huge = format!(r#"{{"question": "{}"}}"#, "x".repeat(1024));
    let resp = client.post("/v1/answer", &huge).expect("413");
    assert_eq!(resp.status, 413);
    assert!(resp.close);

    handle.shutdown().expect("drain");
}

#[test]
fn zero_deadline_expires_requests_with_503() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 2);
    let config = NetConfig { deadline: Duration::ZERO, ..NetConfig::default() };
    let (handle, mut client) = start(qa, config);

    let resp = client
        .post("/v1/answer", r#"{"question": "Which physicist graduated from CMU?"}"#)
        .expect("deadline response");
    assert_eq!(resp.status, 503, "body: {}", resp.body);
    assert!(handle.metrics().deadline_expired.value() >= 1);

    handle.shutdown().expect("drain");
}

#[test]
fn zero_queue_depth_sheds_every_connection() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 2);
    let config = NetConfig { queue_depth: 0, ..NetConfig::default() };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = uqsj_net::serve_on(qa, listener, config).expect("start server");

    let mut client = Client::connect(handle.local_addr(), Duration::from_secs(5)).expect("connect");
    let resp = client.get("/healthz").expect("shed response");
    assert_eq!(resp.status, 429);
    assert!(resp.close);
    assert!(handle.metrics().shed.value() >= 1);

    handle.shutdown().expect("drain");
}

#[test]
fn request_id_round_trips_and_explain_report_reconciles() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 3);
    let (handle, mut client) = start(qa, NetConfig::default());

    // A client-supplied 16-hex X-Request-Id is echoed verbatim, appears
    // as the EXPLAIN report's trace id, and keys the flight-recorder
    // events served by /debug/trace.
    let sent_id = "00000000deadbeef";
    let resp = client
        .request_with_headers(
            "POST",
            "/v1/answer",
            Some(r#"{"question": "Which physicist graduated from CMU?", "explain": true}"#),
            &[("X-Request-Id", sent_id)],
        )
        .expect("explain answer");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    assert_eq!(resp.request_id.as_deref(), Some(sent_id), "header must echo");

    let doc = json::parse(&resp.body).expect("json body");
    let answers = doc.get("answers").and_then(json::Value::as_array).expect("answers");
    assert_eq!(answers[0].as_str(), Some("Alice"));
    let explain = doc.get("explain").expect("explain report");
    assert_eq!(explain.get("trace_id").and_then(json::Value::as_str), Some(sent_id));
    assert_eq!(explain.get("cache_hit").and_then(json::Value::as_bool), Some(false));

    // The serving funnel must account for the whole library: pruned
    // counts across the stages plus the chosen template sum to the
    // library size the signature stage started from.
    let stages = explain.get("stages").and_then(json::Value::as_array).expect("stages");
    assert!(!stages.is_empty());
    let entering =
        stages[0].get("input").and_then(json::Value::as_usize).expect("first stage input");
    let pruned: usize = stages
        .iter()
        .map(|s| s.get("pruned").and_then(json::Value::as_usize).expect("pruned"))
        .sum();
    let chosen =
        usize::from(explain.get("template_index").and_then(json::Value::as_usize).is_some());
    assert_eq!(pruned + chosen, entering, "funnel must reconcile: {}", resp.body);

    // /debug/trace?id= serves the spans recorded under that trace id.
    let trace = client.get(&format!("/debug/trace?id={sent_id}")).expect("trace");
    assert_eq!(trace.status, 200);
    let doc = json::parse(&trace.body).expect("trace json");
    assert_eq!(doc.get("trace_id").and_then(json::Value::as_str), Some(sent_id));
    let events = doc.get("events").and_then(json::Value::as_array).expect("events");
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(json::Value::as_str)).collect();
    assert!(names.contains(&"net.request"), "names: {names:?}");
    assert!(names.contains(&"serve.answer"), "names: {names:?}");

    // An answer this slow log is empty-or-not is environment-dependent,
    // but the explain counter must have moved.
    let metrics = client.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("uqsj_serve_explain_total 1"), "{}", metrics.body);

    handle.shutdown().expect("drain");
}

#[test]
fn request_ids_round_trip_through_batch_and_are_generated_when_absent() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 2);
    let (handle, mut client) = start(qa, NetConfig::default());

    // Batch request with a client id: echoed on the response.
    let resp = client
        .request_with_headers(
            "POST",
            "/v1/answer",
            Some(
                r#"{"questions": ["Which physicist graduated from CMU?", "noise"], "threads": 2}"#,
            ),
            &[("X-Request-Id", "0000000000000abc")],
        )
        .expect("batch");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.request_id.as_deref(), Some("0000000000000abc"));

    // Non-hex client ids map to a stable hash, echoed in canonical form.
    let a = client
        .request_with_headers("GET", "/healthz", None, &[("X-Request-Id", "client-77")])
        .expect("healthz");
    let b = client
        .request_with_headers("GET", "/healthz", None, &[("X-Request-Id", "client-77")])
        .expect("healthz");
    assert_eq!(a.request_id, b.request_id, "same client id must map to the same trace id");
    assert_eq!(a.request_id.as_deref().map(str::len), Some(16));

    // No header: the server generates a fresh id per request.
    let c = client.get("/healthz").expect("healthz");
    let d = client.get("/healthz").expect("healthz");
    assert!(c.request_id.is_some());
    assert_ne!(c.request_id, d.request_id, "generated ids must differ");

    handle.shutdown().expect("drain");
}

#[test]
fn debug_endpoints_serve_well_formed_json() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 2);
    let (handle, mut client) = start(qa, NetConfig::default());

    // Answer twice (one miss, one cache hit) so the slow log and cache
    // have content.
    let q = r#"{"question": "Which physicist graduated from CMU?"}"#;
    assert_eq!(client.post("/v1/answer", q).expect("answer").status, 200);
    assert_eq!(client.post("/v1/answer", q).expect("answer").status, 200);

    let slow = client.get("/debug/slow").expect("slow");
    assert_eq!(slow.status, 200);
    let doc = json::parse(&slow.body).expect("slow json");
    let reports = doc.get("slow").and_then(json::Value::as_array).expect("slow array");
    assert!(!reports.is_empty(), "two answers must leave slow-log entries");
    assert!(reports[0].get("total_us").and_then(json::Value::as_usize).is_some());

    let cache = client.get("/debug/cache").expect("cache");
    assert_eq!(cache.status, 200);
    let doc = json::parse(&cache.body).expect("cache json");
    assert!(doc.get("entries").and_then(json::Value::as_usize).is_some_and(|n| n >= 1));
    assert_eq!(doc.get("capacity").and_then(json::Value::as_usize), Some(64));

    // No cascade attached to this serving core: an empty source list,
    // still well-formed.
    let cascade = client.get("/debug/cascade").expect("cascade");
    assert_eq!(cascade.status, 200);
    let doc = json::parse(&cascade.body).expect("cascade json");
    assert_eq!(doc.get("sources").and_then(json::Value::as_array).map(<[_]>::len), Some(0));

    // Trace endpoint input validation.
    assert_eq!(client.get("/debug/trace").expect("400").status, 400);
    assert_eq!(client.get("/debug/trace?id=zzz").expect("400").status, 400);
    assert_eq!(client.post("/debug/slow", "{}").expect("405").status, 405);

    let metrics = client.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("uqsj_net_debug_requests_total"), "{}", metrics.body);
    assert!(metrics.body.contains("uqsj_net_requests_total{route=\"debug\"}"), "{}", metrics.body);

    handle.shutdown().expect("drain");
}

#[test]
fn shutdown_finishes_queued_work_and_stops_listening() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 2);
    let (handle, mut client) = start(qa, NetConfig::default());
    let addr = handle.local_addr();

    assert_eq!(client.get("/readyz").expect("ready").status, 200);
    handle.shutdown().expect("drain");

    // The port no longer serves: connecting either fails outright or the
    // socket goes nowhere (no listener thread left to answer).
    match Client::connect(addr, Duration::from_millis(300)) {
        Err(_) => {}
        Ok(mut dead) => assert!(dead.get("/healthz").is_err(), "server must be gone"),
    }
}
