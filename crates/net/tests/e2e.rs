//! End-to-end tests over real loopback sockets: a live [`uqsj_net`]
//! server in front of a sharded store, driven by the crate's own
//! blocking client.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;
use uqsj_net::{json, Client, NetConfig};
use uqsj_serve::{ServeConfig, ShardedQaServer};
use uqsj_sparql::{SparqlQuery, Term, Triple};
use uqsj_template::template::{slot_term, SlotBinding};
use uqsj_template::{Template, TemplateLibrary};

const SLOT: &str = "<_>";

/// "Which <_> graduated from <_> ?" against `predicate`.
fn graduated_template(predicate: &str, confidence: f64) -> Template {
    let sparql = SparqlQuery {
        select: vec!["x".into()],
        triples: vec![
            Triple {
                subject: Term::Var("x".into()),
                predicate: Term::Iri("type".into()),
                object: slot_term(0),
            },
            Triple {
                subject: Term::Var("x".into()),
                predicate: Term::Iri(predicate.into()),
                object: slot_term(1),
            },
        ],
    };
    Template::new(
        ["Which", SLOT, "graduated", "from", SLOT, "?"].map(String::from).to_vec(),
        sparql,
        vec![SlotBinding::Bound, SlotBinding::Bound],
        confidence,
    )
}

fn sharded(seed: Vec<Template>, shards: usize) -> Arc<ShardedQaServer> {
    let mut lexicon = uqsj_nlp::lexicon::paper_lexicon();
    lexicon.add_class("physicist", "Physicist");
    let mut triples = uqsj_rdf::TripleStore::new();
    triples.insert("Alice", "type", "Physicist");
    triples.insert("Alice", "graduatedFrom", "Carnegie_Mellon_University");
    triples.ensure_indexes();
    let mut library = TemplateLibrary::new();
    for t in seed {
        library.add(t);
    }
    Arc::new(ShardedQaServer::new(
        library,
        lexicon,
        triples,
        shards,
        ServeConfig { min_phi: 1.0, cache_capacity: 64 },
    ))
}

fn start(qa: Arc<ShardedQaServer>, config: NetConfig) -> (uqsj_net::ServerHandle, Client) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = uqsj_net::serve_on(qa, listener, config).expect("start server");
    let client = Client::connect(handle.local_addr(), Duration::from_secs(5)).expect("connect");
    (handle, client)
}

#[test]
fn answers_over_the_wire() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 3);
    let (handle, mut client) = start(qa, NetConfig::default());

    assert_eq!(client.get("/healthz").expect("healthz").status, 200);
    assert_eq!(client.get("/readyz").expect("readyz").status, 200);

    let resp = client
        .post("/v1/answer", r#"{"question": "Which physicist graduated from CMU?"}"#)
        .expect("answer");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let doc = json::parse(&resp.body).expect("json body");
    let answers = doc.get("answers").and_then(json::Value::as_array).expect("answers");
    assert_eq!(answers[0].as_str(), Some("Alice"));
    assert!(doc.get("sparql").and_then(json::Value::as_str).is_some());
    assert!(doc.get("shards_touched").and_then(json::Value::as_usize).is_some());

    // Keep-alive: the same connection serves the next request.
    assert!(!resp.close);
    let again = client
        .post(
            "/v1/answer",
            r#"{"questions": ["Which physicist graduated from CMU?", "gibberish"], "threads": 2}"#,
        )
        .expect("batch answer");
    assert_eq!(again.status, 200);
    let doc = json::parse(&again.body).expect("json body");
    let results = doc.get("results").and_then(json::Value::as_array).expect("results");
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].get("answers").and_then(json::Value::as_array).map(<[_]>::len), Some(1));

    handle.shutdown().expect("drain");
}

#[test]
fn ingest_over_the_wire_updates_answers() {
    // Seed with a template whose predicate the KB never uses.
    let qa = sharded(vec![graduated_template("wrongPredicate", 0.5)], 4);
    let (handle, mut client) = start(qa, NetConfig::default());

    let question = r#"{"question": "Which physicist graduated from CMU?"}"#;
    let stale = client.post("/v1/answer", question).expect("stale answer");
    let doc = json::parse(&stale.body).expect("json");
    assert_eq!(
        doc.get("answers").and_then(json::Value::as_array).map(<[_]>::len),
        Some(0),
        "seed template must not answer"
    );

    // Ship a better template through the ingest route (text format,
    // carried as a JSON string).
    let mut library = TemplateLibrary::new();
    library.add(graduated_template("graduatedFrom", 0.99));
    let body = json::object([("templates", uqsj_template::io::to_text(&library).as_str().into())]);
    let resp = client.post("/v1/templates", &body.render()).expect("ingest");
    assert_eq!(resp.status, 200, "body: {}", resp.body);
    let doc = json::parse(&resp.body).expect("json");
    assert_eq!(doc.get("added").and_then(json::Value::as_usize), Some(1));
    assert_eq!(doc.get("count").and_then(json::Value::as_usize), Some(2));

    // The cached stale outcome must not survive the ingest.
    let fresh = client.post("/v1/answer", question).expect("fresh answer");
    let doc = json::parse(&fresh.body).expect("json");
    let answers = doc.get("answers").and_then(json::Value::as_array).expect("answers");
    assert_eq!(answers[0].as_str(), Some("Alice"), "ingested template must win");

    let metrics = client.get("/metrics").expect("metrics");
    assert!(metrics.body.contains("uqsj_net_ingested_templates_total 1"));
    assert!(metrics.body.contains("uqsj_net_requests_total{route=\"answer\"}"));
    assert!(metrics.body.contains("uqsj_shard_count 4"));
    assert!(metrics.body.contains("uqsj_serve_"));

    handle.shutdown().expect("drain");
}

#[test]
fn rejects_bad_requests_with_the_right_status() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 2);
    let config = NetConfig { max_body_bytes: 256, ..NetConfig::default() };
    let (handle, mut client) = start(qa, config);

    // Unknown route and wrong method.
    assert_eq!(client.get("/nope").expect("404").status, 404);
    assert_eq!(client.get("/v1/answer").expect("405").status, 405);

    // Malformed and mis-shaped JSON.
    assert_eq!(client.post("/v1/answer", "{not json").expect("400").status, 400);
    assert_eq!(client.post("/v1/answer", r#"{"threads": 2}"#).expect("400").status, 400);
    assert_eq!(client.post("/v1/answer", r#"{"questions": [1,2]}"#).expect("400").status, 400);
    assert_eq!(
        client.post("/v1/templates", r##"{"templates": "#garbage"}"##).expect("400").status,
        400
    );

    // Oversized body: 413 and the connection closes.
    let huge = format!(r#"{{"question": "{}"}}"#, "x".repeat(1024));
    let resp = client.post("/v1/answer", &huge).expect("413");
    assert_eq!(resp.status, 413);
    assert!(resp.close);

    handle.shutdown().expect("drain");
}

#[test]
fn zero_deadline_expires_requests_with_503() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 2);
    let config = NetConfig { deadline: Duration::ZERO, ..NetConfig::default() };
    let (handle, mut client) = start(qa, config);

    let resp = client
        .post("/v1/answer", r#"{"question": "Which physicist graduated from CMU?"}"#)
        .expect("deadline response");
    assert_eq!(resp.status, 503, "body: {}", resp.body);
    assert!(handle.metrics().deadline_expired.value() >= 1);

    handle.shutdown().expect("drain");
}

#[test]
fn zero_queue_depth_sheds_every_connection() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 2);
    let config = NetConfig { queue_depth: 0, ..NetConfig::default() };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = uqsj_net::serve_on(qa, listener, config).expect("start server");

    let mut client = Client::connect(handle.local_addr(), Duration::from_secs(5)).expect("connect");
    let resp = client.get("/healthz").expect("shed response");
    assert_eq!(resp.status, 429);
    assert!(resp.close);
    assert!(handle.metrics().shed.value() >= 1);

    handle.shutdown().expect("drain");
}

#[test]
fn shutdown_finishes_queued_work_and_stops_listening() {
    let qa = sharded(vec![graduated_template("graduatedFrom", 0.9)], 2);
    let (handle, mut client) = start(qa, NetConfig::default());
    let addr = handle.local_addr();

    assert_eq!(client.get("/readyz").expect("ready").status, 200);
    handle.shutdown().expect("drain");

    // The port no longer serves: connecting either fails outright or the
    // socket goes nowhere (no listener thread left to answer).
    match Client::connect(addr, Duration::from_millis(300)) {
        Err(_) => {}
        Ok(mut dead) => assert!(dead.get("/healthz").is_err(), "server must be gone"),
    }
}
