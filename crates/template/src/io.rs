//! Template library persistence: a plain-text format so generated
//! template sets can be shipped and reloaded without re-running the join
//! (the paper's offline/online split — templates are mined offline and
//! used online).
//!
//! Format, one record per template, blank-line separated:
//!
//! ```text
//! #template confidence=0.93 slots=BU
//! nl: Which <_> graduated from <_> ?
//! sparql: SELECT ?x WHERE { ?x type __SLOT_0__ . ?x graduatedFrom __SLOT_1__ . }
//! ```
//!
//! `slots` encodes each slot's binding: `B`ound or `U`nbound.

use crate::qa::TemplateLibrary;
use crate::template::{SlotBinding, Template};
use std::fmt;

/// Error while parsing a serialized library.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TemplateIoError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based ordinal of the template record being parsed when the
    /// error occurred.
    pub template: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TemplateIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "template parse error in template #{} on line {}: {}",
            self.template, self.line, self.message
        )
    }
}

impl std::error::Error for TemplateIoError {}

/// Serialize a library to text.
pub fn to_text(library: &TemplateLibrary) -> String {
    let mut out = String::new();
    for t in library.templates() {
        let slots: String =
            t.slots.iter().map(|s| if *s == SlotBinding::Bound { 'B' } else { 'U' }).collect();
        out.push_str(&format!("#template confidence={:.6} slots={}\n", t.confidence, slots));
        out.push_str(&format!("nl: {}\n", t.nl_tokens.join(" ")));
        let sparql_one_line = t.sparql.to_string().replace('\n', " ");
        out.push_str(&format!("sparql: {}\n\n", sparql_one_line));
    }
    out
}

/// Parse a library from text.
pub fn from_text(text: &str) -> Result<TemplateLibrary, TemplateIoError> {
    let mut library = TemplateLibrary::new();
    let mut lines = text.lines().enumerate().peekable();
    let mut ordinal = 0usize;
    while let Some((i, line)) = lines.next() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // Everything until the next blank line belongs to this record.
        ordinal += 1;
        let err =
            |line: usize, message: String| TemplateIoError { line, template: ordinal, message };
        let header = line
            .strip_prefix("#template")
            .ok_or_else(|| err(i + 1, "expected #template header".into()))?;
        let mut confidence = 0.0f64;
        let mut slots: Vec<SlotBinding> = Vec::new();
        for field in header.split_whitespace() {
            if let Some(v) = field.strip_prefix("confidence=") {
                confidence = v.parse().map_err(|_| err(i + 1, format!("bad confidence {v:?}")))?;
            } else if let Some(v) = field.strip_prefix("slots=") {
                slots = v
                    .chars()
                    .map(|c| match c {
                        'B' => Ok(SlotBinding::Bound),
                        'U' => Ok(SlotBinding::Unbound),
                        other => Err(err(i + 1, format!("bad slot flag {other:?}"))),
                    })
                    .collect::<Result<_, _>>()?;
            }
        }
        let (j, nl_line) = lines.next().ok_or_else(|| err(i + 2, "missing nl: line".into()))?;
        let nl = nl_line
            .trim()
            .strip_prefix("nl:")
            .ok_or_else(|| err(j + 1, "expected nl: line".into()))?;
        let nl_tokens: Vec<String> = nl.split_whitespace().map(str::to_owned).collect();
        let (k, sparql_line) =
            lines.next().ok_or_else(|| err(j + 2, "missing sparql: line".into()))?;
        let sparql_text = sparql_line
            .trim()
            .strip_prefix("sparql:")
            .ok_or_else(|| err(k + 1, "expected sparql: line".into()))?;
        let sparql =
            uqsj_sparql::parse(sparql_text.trim()).map_err(|e| err(k + 1, e.to_string()))?;
        let slot_count = nl_tokens.iter().filter(|t| *t == crate::template_slot_token()).count();
        if slots.len() != slot_count {
            return Err(err(
                i + 1,
                format!("slots= lists {} flags but pattern has {slot_count} slots", slots.len()),
            ));
        }
        library.add(Template::new(nl_tokens, sparql, slots, confidence));
    }
    Ok(library)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::slot_term;
    use uqsj_sparql::{SparqlQuery, Term, Triple};

    fn library() -> TemplateLibrary {
        let sparql = SparqlQuery {
            select: vec!["x".into()],
            triples: vec![
                Triple {
                    subject: Term::Var("x".into()),
                    predicate: Term::Iri("type".into()),
                    object: slot_term(0),
                },
                Triple {
                    subject: Term::Var("x".into()),
                    predicate: Term::Iri("graduatedFrom".into()),
                    object: slot_term(1),
                },
            ],
        };
        let t = Template::new(
            vec![
                "Which".into(),
                "<_>".into(),
                "graduated".into(),
                "from".into(),
                "<_>".into(),
                "?".into(),
            ],
            sparql,
            vec![SlotBinding::Bound, SlotBinding::Bound],
            0.875,
        );
        let mut lib = TemplateLibrary::new();
        lib.add(t);
        lib
    }

    #[test]
    fn roundtrip() {
        let lib = library();
        let text = to_text(&lib);
        let parsed = from_text(&text).unwrap();
        assert_eq!(parsed.len(), 1);
        let (a, b) = (&lib.templates()[0], &parsed.templates()[0]);
        assert_eq!(a.nl_tokens, b.nl_tokens);
        assert_eq!(a.sparql, b.sparql);
        assert_eq!(a.slots, b.slots);
        assert!((a.confidence - b.confidence).abs() < 1e-6);
    }

    #[test]
    fn parse_errors_carry_line_numbers_and_ordinals() {
        let err = from_text("not a template").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.template, 1);
        let err =
            from_text("#template confidence=x slots=B\nnl: a\nsparql: SELECT ?x WHERE { ?x p ?y }")
                .unwrap_err();
        assert!(err.message.contains("bad confidence"));
        assert_eq!(err.template, 1);
        // An error in the second record names template #2.
        let good = to_text(&library());
        let err =
            from_text(&format!("{good}\n#template confidence=0.5 slots=B\nnl: a\n")).unwrap_err();
        assert_eq!(err.template, 2, "{err}");
        assert!(err.to_string().contains("template #2"), "{err}");
    }

    #[test]
    fn slot_count_mismatch_is_rejected() {
        let text = "#template confidence=0.5 slots=BB\nnl: Which <_> ?\nsparql: SELECT ?x WHERE { ?x type __SLOT_0__ }\n";
        let err = from_text(text).unwrap_err();
        assert!(err.message.contains("slots="), "{err}");
    }

    #[test]
    fn empty_input_is_empty_library() {
        assert!(from_text("").unwrap().is_empty());
        assert!(from_text("\n\n").unwrap().is_empty());
    }
}
