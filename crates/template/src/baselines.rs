//! Baseline Q/A systems for the Table 4 comparison.
//!
//! * [`ganswer_like`] — a template-free graph-data-driven translator in
//!   the spirit of gAnswer \[33\]: build the semantic query graph, link
//!   every entity mention to its top candidate, emit SPARQL directly.
//! * [`deanna_like`] — a cruder joint-disambiguation translator in the
//!   spirit of DEANNA \[23\], reduced to entity/class spotting: relation
//!   phrases are not interpreted, so the query constrains only the type
//!   and an unlabeled connection (`?x ?p Entity`), which costs precision.
//!
//! Both are deliberately simplified stand-ins (the originals are closed
//! source); DESIGN.md records the substitution. What matters for the
//! reproduction is the *relative* behaviour the paper reports: templates
//! dominate gAnswer, which dominates DEANNA.

use uqsj_nlp::semantic::{analyze_question, VertexInfo};
use uqsj_nlp::Lexicon;
use uqsj_rdf::TripleStore;
use uqsj_sparql::{SparqlQuery, Term, Triple};

/// gAnswer-like answering: semantic query graph → SPARQL (top-1 linking).
pub fn ganswer_like(lexicon: &Lexicon, store: &TripleStore, question: &str) -> Vec<String> {
    let Ok(analysis) = analyze_question(lexicon, question) else {
        return Vec::new();
    };
    // Map semantic vertices to SPARQL terms.
    let mut terms: Vec<Term> = Vec::with_capacity(analysis.vertices.len());
    let mut var_counter = 0usize;
    for v in &analysis.vertices {
        terms.push(match v {
            VertexInfo::Variable(_) => {
                var_counter += 1;
                if var_counter == 1 {
                    Term::Var("x".into())
                } else {
                    Term::Var(format!("v{var_counter}"))
                }
            }
            VertexInfo::ClassMention { class, .. } => Term::Iri(class.clone()),
            VertexInfo::EntityMention { candidates, .. } => {
                let top =
                    candidates.iter().max_by(|a, b| a.prob.partial_cmp(&b.prob).expect("finite"));
                match top {
                    Some(c) => Term::Iri(c.entity.clone()),
                    None => return Vec::new(),
                }
            }
        });
    }
    let triples: Vec<Triple> = analysis
        .relations
        .iter()
        .map(|r| Triple {
            subject: terms[r.arg1].clone(),
            predicate: Term::Iri(r.predicate.clone()),
            object: terms[r.arg2].clone(),
        })
        .collect();
    if triples.is_empty() {
        return Vec::new();
    }
    let q = SparqlQuery { select: vec!["x".into()], triples };
    uqsj_rdf::bgp::evaluate(store, &q).into_iter().map(|row| row.join("\t")).collect()
}

/// DEANNA-like answering: entity/class spotting with an uninterpreted
/// predicate.
pub fn deanna_like(lexicon: &Lexicon, store: &TripleStore, question: &str) -> Vec<String> {
    let Ok(analysis) = analyze_question(lexicon, question) else {
        return Vec::new();
    };
    let mut triples: Vec<Triple> = Vec::new();
    let var = Term::Var("x".into());
    let mut wildcard = 0usize;
    for v in &analysis.vertices {
        match v {
            VertexInfo::Variable(_) => {}
            VertexInfo::ClassMention { class, .. } => triples.push(Triple {
                subject: var.clone(),
                predicate: Term::Iri("type".into()),
                object: Term::Iri(class.clone()),
            }),
            VertexInfo::EntityMention { candidates, .. } => {
                // Joint disambiguation reduced to "take the top
                // candidate", connected by an unconstrained predicate.
                if let Some(c) =
                    candidates.iter().max_by(|a, b| a.prob.partial_cmp(&b.prob).expect("finite"))
                {
                    wildcard += 1;
                    triples.push(Triple {
                        subject: var.clone(),
                        predicate: Term::Var(format!("p{wildcard}")),
                        object: Term::Iri(c.entity.clone()),
                    });
                }
            }
        }
    }
    if triples.is_empty() {
        return Vec::new();
    }
    let q = SparqlQuery { select: vec!["x".into()], triples };
    uqsj_rdf::bgp::evaluate(store, &q).into_iter().map(|row| row.join("\t")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Lexicon, TripleStore) {
        let mut lex = uqsj_nlp::lexicon::paper_lexicon();
        lex.add_class("physicist", "Physicist");
        lex.add_surface_form(
            "mit",
            vec![uqsj_nlp::EntityCandidate {
                entity: "MIT".into(),
                class: "University".into(),
                prob: 1.0,
            }],
        );
        lex.add_predicate("almaMater", &["educated at"]);
        let mut s = TripleStore::new();
        s.insert("Alice", "type", "Physicist");
        s.insert("Alice", "graduatedFrom", "MIT");
        s.insert("Bob", "type", "Physicist");
        s.insert("Bob", "almaMater", "MIT");
        s.ensure_indexes();
        (lex, s)
    }

    #[test]
    fn ganswer_like_answers_direct_questions() {
        let (lex, store) = setup();
        let a = ganswer_like(&lex, &store, "Which physicist graduated from MIT?");
        assert_eq!(a, vec!["Alice".to_string()]);
    }

    #[test]
    fn deanna_like_overmatches_without_relations() {
        let (lex, store) = setup();
        let a = deanna_like(&lex, &store, "Which physicist graduated from MIT?");
        // The uninterpreted predicate matches both graduatedFrom and
        // almaMater — lower precision, exactly the baseline's weakness.
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn both_fail_gracefully_on_unparseable_input() {
        let (lex, store) = setup();
        assert!(ganswer_like(&lex, &store, "gibberish sentence here").is_empty());
        assert!(deanna_like(&lex, &store, "gibberish sentence here").is_empty());
    }
}
