//! QALD-style evaluation measures (Appendix F.2 of the paper):
//! per-question precision and recall, macro-averaged, with the F-measure
//! computed from the averages.

use std::collections::BTreeSet;

/// Accumulator over questions.
#[derive(Clone, Debug, Default)]
pub struct QaScore {
    precisions: Vec<f64>,
    recalls: Vec<f64>,
}

impl QaScore {
    /// New empty score.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one question's system answers against the gold answers.
    ///
    /// QALD convention: empty system answers score 0/0 unless the gold is
    /// also empty (then 1/1).
    pub fn record<S: AsRef<str>, G: AsRef<str>>(&mut self, system: &[S], gold: &[G]) {
        let sys: BTreeSet<&str> = system.iter().map(AsRef::as_ref).collect();
        let gld: BTreeSet<&str> = gold.iter().map(AsRef::as_ref).collect();
        if gld.is_empty() && sys.is_empty() {
            self.precisions.push(1.0);
            self.recalls.push(1.0);
            return;
        }
        let correct = sys.intersection(&gld).count() as f64;
        self.precisions.push(if sys.is_empty() { 0.0 } else { correct / sys.len() as f64 });
        self.recalls.push(if gld.is_empty() { 0.0 } else { correct / gld.len() as f64 });
    }

    /// Number of questions recorded.
    pub fn len(&self) -> usize {
        self.precisions.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.precisions.is_empty()
    }

    /// Macro-averaged precision.
    pub fn precision(&self) -> f64 {
        avg(&self.precisions)
    }

    /// Macro-averaged recall.
    pub fn recall(&self) -> f64 {
        avg(&self.recalls)
    }

    /// F-measure of the averaged precision/recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn avg(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_answers() {
        let mut s = QaScore::new();
        s.record(&["a", "b"], &["a", "b"]);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f1(), 1.0);
    }

    #[test]
    fn partial_answers() {
        let mut s = QaScore::new();
        s.record(&["a", "x"], &["a", "b"]); // P=0.5 R=0.5
        s.record::<&str, _>(&[], &["a"]); // P=0 R=0
        assert!((s.precision() - 0.25).abs() < 1e-12);
        assert!((s.recall() - 0.25).abs() < 1e-12);
        assert!((s.f1() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_gold_and_empty_system_is_correct() {
        let mut s = QaScore::new();
        s.record::<&str, &str>(&[], &[]);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut s = QaScore::new();
        s.record(&["a", "a", "a"], &["a"]);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }
}
