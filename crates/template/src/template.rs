//! The template type (Fig. 4(d) of the paper): a natural-language pattern
//! with slots paired with a SPARQL pattern with slots, plus the mapping
//! between the two sides.

use std::fmt;
use uqsj_nlp::align::SLOT_TOKEN;
use uqsj_nlp::deptree::{parse_dependency_tokens, DepTree};
use uqsj_sparql::{SparqlQuery, Term};

/// Marker prefix used for slot placeholders inside the SPARQL pattern.
pub const SPARQL_SLOT_PREFIX: &str = "__SLOT_";

/// Placeholder term for slot `i`.
pub fn slot_term(i: usize) -> Term {
    Term::Iri(format!("{SPARQL_SLOT_PREFIX}{i}__"))
}

/// If `t` is a slot placeholder, its index.
pub fn slot_index(t: &Term) -> Option<usize> {
    match t {
        Term::Iri(x) => x
            .strip_prefix(SPARQL_SLOT_PREFIX)
            .and_then(|s| s.strip_suffix("__"))
            .and_then(|s| s.parse().ok()),
        _ => None,
    }
}

/// How one NL slot binds into the SPARQL pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SlotBinding {
    /// The slot fills entity/class positions in the SPARQL pattern
    /// (replaced by the linked entity at answer time).
    Bound,
    /// The phrase appears in the question but has no SPARQL position
    /// (e.g. its vertex was deleted by the edit mapping); it is matched
    /// but discarded.
    Unbound,
}

/// A question-answering template.
#[derive(Clone, Debug, PartialEq)]
pub struct Template {
    /// NL pattern tokens; slots are [`SLOT_TOKEN`].
    pub nl_tokens: Vec<String>,
    /// SPARQL pattern with [`slot_term`] placeholders.
    pub sparql: SparqlQuery,
    /// Binding of each slot, in NL order.
    pub slots: Vec<SlotBinding>,
    /// Dependency tree of the NL pattern (for TED ranking).
    pub dep_tree: DepTree,
    /// Similarity probability of the pair that produced this template
    /// (used to break ranking ties: higher-confidence templates first).
    pub confidence: f64,
}

impl Template {
    /// Construct, parsing the NL pattern's dependency tree.
    pub fn new(
        nl_tokens: Vec<String>,
        sparql: SparqlQuery,
        slots: Vec<SlotBinding>,
        confidence: f64,
    ) -> Self {
        // Slot tokens are parsed as SLOTi words so the dep parser treats
        // them as nouns and TED can match them against any word.
        let parse_tokens: Vec<String> = nl_tokens
            .iter()
            .enumerate()
            .map(|(i, t)| if t == SLOT_TOKEN { format!("SLOT{i}") } else { t.clone() })
            .collect();
        let dep_tree = parse_dependency_tokens(&parse_tokens);
        Self { nl_tokens, sparql, slots, dep_tree, confidence }
    }

    /// Number of slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The NL pattern as text ("Which <_> graduated from <_> ?").
    pub fn nl_pattern(&self) -> String {
        self.nl_tokens.join(" ")
    }

    /// Deduplication key: NL pattern + SPARQL pattern text.
    pub fn dedup_key(&self) -> (String, String) {
        (self.nl_pattern(), self.sparql.to_string())
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.nl_pattern())?;
        write!(f, "{}", self.sparql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_sparql::Triple;

    #[test]
    fn slot_term_roundtrip() {
        assert_eq!(slot_index(&slot_term(3)), Some(3));
        assert_eq!(slot_index(&Term::Iri("Actor".into())), None);
        assert_eq!(slot_index(&Term::Var("x".into())), None);
    }

    #[test]
    fn template_pattern_and_tree() {
        let sparql = SparqlQuery {
            select: vec!["x".into()],
            triples: vec![Triple {
                subject: Term::Var("x".into()),
                predicate: Term::Iri("type".into()),
                object: slot_term(0),
            }],
        };
        let t = Template::new(
            vec![
                "Which".into(),
                SLOT_TOKEN.into(),
                "graduated".into(),
                "from".into(),
                SLOT_TOKEN.into(),
                "?".into(),
            ],
            sparql,
            vec![SlotBinding::Bound, SlotBinding::Bound],
            0.9,
        );
        assert_eq!(t.nl_pattern(), "Which <_> graduated from <_> ?");
        assert_eq!(t.slot_count(), 2);
        assert_eq!(t.dep_tree.len(), 6);
    }
}
