//! Template generation and template-based question answering — Steps 3 of
//! Sec. 2.1 and all of Sec. 2.2 of the paper.
//!
//! * [`template`] — the [`Template`] type: an NL pattern with slots, a
//!   SPARQL pattern with matching slots, and the slot correspondence
//!   (Fig. 4(d)).
//! * [`generate`] — building a template from one similar graph pair and
//!   its GED mapping.
//! * [`qa`] — answering a new question: TED-ranked template selection,
//!   slot filling by alignment, entity linking, SPARQL execution.
//! * [`baselines`] — the gAnswer-like and DEANNA-like comparison systems
//!   of Table 4.
//! * [`metrics`] — the QALD-style precision/recall/F-measure used by
//!   Tables 4 and 5.

pub mod baselines;
pub mod generate;
pub mod io;
pub mod metrics;
pub mod qa;
pub mod template;

pub use generate::{generate_template, TemplateSource};
pub use qa::{
    answer_across, answer_question, answer_with_candidates, AnswerStats, CandidateRef, MultiAnswer,
    QaOutcome, TemplateLibrary,
};
pub use template::{SlotBinding, Template};

/// The NL slot marker (re-exported for the persistence format).
pub fn template_slot_token() -> &'static str {
    uqsj_nlp::align::SLOT_TOKEN
}
