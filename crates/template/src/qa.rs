//! Q/A with templates (Sec. 2.2 of the paper): template matching by
//! dependency-tree edit distance, slot filling by alignment, entity
//! linking, and SPARQL execution.

use crate::template::{slot_index, SlotBinding, Template};
use uqsj_nlp::align::{align_with_slots, partial_align_with_slots};
use uqsj_nlp::deptree::parse_dependency_tokens;
use uqsj_nlp::ted::tree_edit_distance;
use uqsj_nlp::token::tokenize;
use uqsj_nlp::Lexicon;
use uqsj_rdf::TripleStore;
use uqsj_sparql::{SparqlQuery, Term};

/// A deduplicated set of templates.
#[derive(Debug, Default)]
pub struct TemplateLibrary {
    templates: Vec<Template>,
}

impl TemplateLibrary {
    /// Empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a template; returns `false` (and keeps the higher-confidence
    /// copy) when an identical pattern pair already exists.
    pub fn add(&mut self, t: Template) -> bool {
        let key = t.dedup_key();
        if let Some(existing) = self.templates.iter_mut().find(|x| x.dedup_key() == key) {
            if t.confidence > existing.confidence {
                existing.confidence = t.confidence;
            }
            return false;
        }
        self.templates.push(t);
        true
    }

    /// Number of distinct templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The templates.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }
}

/// Result of answering one question.
#[derive(Clone, Debug, Default)]
pub struct QaOutcome {
    /// The instantiated SPARQL query, if a template applied.
    pub sparql: Option<SparqlQuery>,
    /// Decoded answers.
    pub answers: Vec<String>,
    /// Index of the chosen template.
    pub template_index: Option<usize>,
    /// Matching proportion φ of the chosen alignment.
    pub phi: f64,
}

/// Answer a question with the library. `min_phi` is the Table-5 knob:
/// `1.0` requires a full template match; lower values admit partial
/// matches ("we can also generate SPARQL queries based on this partial
/// match", Appendix F.2).
pub fn answer_question(
    library: &TemplateLibrary,
    lexicon: &Lexicon,
    store: &TripleStore,
    question: &str,
    min_phi: f64,
) -> QaOutcome {
    let tokens = tokenize(question);
    if tokens.is_empty() {
        return QaOutcome::default();
    }
    let question_tree = parse_dependency_tokens(&tokens);

    // Rank candidates: full alignments first (φ = 1), then partial ones
    // by φ; ties broken by dependency-tree edit distance, then template
    // confidence (Sec. 2.2: "find a template's dependency tree that best
    // aligns with the dependency tree of the ... question").
    #[allow(clippy::type_complexity)]
    let mut candidates: Vec<(usize, f64, u32, Vec<Vec<String>>)> = Vec::new();
    for (i, t) in library.templates().iter().enumerate() {
        if let Some(slots) = align_with_slots(&t.nl_tokens, &tokens) {
            let ted = tree_edit_distance(&t.dep_tree, &question_tree);
            candidates.push((i, 1.0, ted, slots));
        } else if min_phi < 1.0 {
            if let Some((phi, slots)) = partial_align_with_slots(&t.nl_tokens, &tokens) {
                if phi + 1e-12 >= min_phi {
                    let ted = tree_edit_distance(&t.dep_tree, &question_tree);
                    candidates.push((i, phi, ted, slots));
                }
            }
        }
    }
    candidates.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("phi is finite")
            .then(a.2.cmp(&b.2))
            .then(
                library.templates()[b.0]
                    .confidence
                    .partial_cmp(&library.templates()[a.0].confidence)
                    .expect("confidence is finite"),
            )
    });

    for (i, phi, _, slots) in candidates {
        let template = &library.templates()[i];
        if let Some((sparql, answers)) = fill_and_execute(template, &slots, lexicon, store) {
            return QaOutcome { sparql: Some(sparql), answers, template_index: Some(i), phi };
        }
    }
    QaOutcome::default()
}

/// Instantiate and execute, disambiguating entity slots against the
/// knowledge base: candidate combinations are tried in descending joint
/// confidence and the first non-empty result wins; if every combination
/// is empty, the most confident instantiation is returned. This is where
/// template-based Q/A beats direct translation — the SPARQL pattern
/// supplies enough context to reject linkings the data contradicts.
fn fill_and_execute(
    template: &Template,
    slot_phrases: &[Vec<String>],
    lexicon: &Lexicon,
    store: &TripleStore,
) -> Option<(SparqlQuery, Vec<String>)> {
    // Ranked candidate lists per slot (entities by confidence, or the
    // class resolution).
    let mut options: Vec<Vec<(String, f64)>> = Vec::with_capacity(slot_phrases.len());
    for (i, phrase_tokens) in slot_phrases.iter().enumerate() {
        if template.slots.get(i) != Some(&SlotBinding::Bound) {
            options.push(vec![(String::new(), 1.0)]); // unused slot
            continue;
        }
        let phrase = phrase_tokens.join(" ");
        let mut cands: Vec<(String, f64)> = match lexicon.link(&phrase) {
            Some(cs) => cs.iter().map(|c| (c.entity.clone(), c.prob)).collect(),
            None => match lexicon.class_of_noun(&phrase) {
                Some(class) => vec![(class.to_owned(), 1.0)],
                None => return None,
            },
        };
        cands.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite confidence"));
        cands.truncate(3);
        options.push(cands);
    }
    // Enumerate combinations in descending joint confidence (small
    // product space: <= 3^slots, slots are few).
    let mut combos: Vec<(Vec<usize>, f64)> = vec![(vec![0; options.len()], 1.0)];
    for (s, opts) in options.iter().enumerate() {
        let mut next = Vec::with_capacity(combos.len() * opts.len());
        for (choice, p) in &combos {
            for (ci, (_, cp)) in opts.iter().enumerate() {
                let mut c = choice.clone();
                c[s] = ci;
                next.push((c, p * cp));
            }
        }
        combos = next;
    }
    combos.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite confidence"));

    let mut fallback: Option<(SparqlQuery, Vec<String>)> = None;
    for (choice, _) in combos {
        let mut sparql = template.sparql.clone();
        for triple in &mut sparql.triples {
            for t in [&mut triple.subject, &mut triple.object] {
                if let Some(i) = slot_index(t) {
                    if template.slots.get(i) != Some(&SlotBinding::Bound) {
                        return None; // placeholder without a usable slot
                    }
                    *t = Term::Iri(options[i][choice[i]].0.clone());
                }
            }
        }
        let answers: Vec<String> = uqsj_rdf::bgp::evaluate(store, &sparql)
            .into_iter()
            .map(|row| row.join("\t"))
            .collect();
        if !answers.is_empty() {
            return Some((sparql, answers));
        }
        if fallback.is_none() {
            fallback = Some((sparql, answers));
        }
    }
    fallback
}

/// Instantiate a template's SPARQL with linked slot phrases. Entity
/// phrases link to their most confident candidate; class nouns resolve to
/// their class. Fails if any *bound* slot cannot be linked.
pub fn fill_slots(
    template: &Template,
    slot_phrases: &[Vec<String>],
    lexicon: &Lexicon,
) -> Option<SparqlQuery> {
    if slot_phrases.len() != template.slot_count() {
        return None;
    }
    let mut sparql = template.sparql.clone();
    for triple in &mut sparql.triples {
        for t in [&mut triple.subject, &mut triple.object] {
            if let Some(i) = slot_index(t) {
                if template.slots.get(i) != Some(&SlotBinding::Bound) {
                    return None; // placeholder without a usable slot
                }
                let phrase = slot_phrases[i].join(" ");
                let linked = link_phrase(lexicon, &phrase)?;
                *t = Term::Iri(linked);
            }
        }
    }
    Some(sparql)
}

/// Entity-link a slot phrase: top-confidence entity, else class noun.
fn link_phrase(lexicon: &Lexicon, phrase: &str) -> Option<String> {
    if let Some(cands) = lexicon.link(phrase) {
        return cands
            .iter()
            .max_by(|a, b| a.prob.partial_cmp(&b.prob).expect("finite"))
            .map(|c| c.entity.clone());
    }
    lexicon.class_of_noun(phrase).map(str::to_owned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::slot_term;
    use uqsj_nlp::align::SLOT_TOKEN;
    use uqsj_sparql::Triple;

    fn library() -> TemplateLibrary {
        // "Which <_> graduated from <_> ?" →
        // SELECT ?x { ?x type SLOT0 . ?x graduatedFrom SLOT1 }
        let sparql = SparqlQuery {
            select: vec!["x".into()],
            triples: vec![
                Triple {
                    subject: Term::Var("x".into()),
                    predicate: Term::Iri("type".into()),
                    object: slot_term(0),
                },
                Triple {
                    subject: Term::Var("x".into()),
                    predicate: Term::Iri("graduatedFrom".into()),
                    object: slot_term(1),
                },
            ],
        };
        let t = Template::new(
            vec![
                "Which".into(),
                SLOT_TOKEN.into(),
                "graduated".into(),
                "from".into(),
                SLOT_TOKEN.into(),
                "?".into(),
            ],
            sparql,
            vec![SlotBinding::Bound, SlotBinding::Bound],
            0.9,
        );
        let mut lib = TemplateLibrary::new();
        assert!(lib.add(t));
        lib
    }

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert("Alice", "type", "Physicist");
        s.insert("Alice", "graduatedFrom", "Carnegie_Mellon_University");
        s.insert("Bob", "type", "Physicist");
        s.insert("Bob", "graduatedFrom", "Harvard_University");
        s.ensure_indexes();
        s
    }

    #[test]
    fn answers_example1_of_the_paper() {
        let lib = library();
        let lex = uqsj_nlp::lexicon::paper_lexicon();
        let mut lex = lex;
        lex.add_class("physicist", "Physicist");
        let store = store();
        let out = answer_question(&lib, &lex, &store, "Which physicist graduated from CMU?", 1.0);
        assert_eq!(out.answers, vec!["Alice".to_string()]);
        assert!((out.phi - 1.0).abs() < 1e-12);
        let sparql = out.sparql.unwrap().to_string();
        assert!(sparql.contains("Physicist"), "{sparql}");
        assert!(sparql.contains("Carnegie_Mellon_University"), "{sparql}");
    }

    #[test]
    fn no_match_returns_empty() {
        let lib = library();
        let lex = uqsj_nlp::lexicon::paper_lexicon();
        let store = store();
        let out = answer_question(&lib, &lex, &store, "Name every mountain on Mars", 1.0);
        assert!(out.sparql.is_none());
        assert!(out.answers.is_empty());
    }

    #[test]
    fn partial_match_mode_answers_with_trailing_noise() {
        let lib = library();
        let mut lex = uqsj_nlp::lexicon::paper_lexicon();
        lex.add_class("physicist", "Physicist");
        let store = store();
        let q = "Which physicist graduated from CMU please tell me now quickly";
        let strict = answer_question(&lib, &lex, &store, q, 1.0);
        assert!(strict.sparql.is_none(), "full match should fail");
        let lenient = answer_question(&lib, &lex, &store, q, 0.5);
        assert_eq!(lenient.answers, vec!["Alice".to_string()]);
        assert!(lenient.phi < 1.0);
    }

    #[test]
    fn dedup_keeps_highest_confidence() {
        let mut lib = library();
        let t2 = {
            let t = &lib.templates()[0];
            let mut c = t.clone();
            c.confidence = 0.99;
            c
        };
        assert!(!lib.add(t2));
        assert_eq!(lib.len(), 1);
        assert!((lib.templates()[0].confidence - 0.99).abs() < 1e-12);
    }

    #[test]
    fn unlinkable_slot_fails_gracefully() {
        let lib = library();
        let lex = uqsj_nlp::lexicon::paper_lexicon(); // no "physicist" class
        let store = store();
        let out = answer_question(&lib, &lex, &store, "Which warlock graduated from CMU?", 1.0);
        assert!(out.sparql.is_none());
    }
}
