//! Q/A with templates (Sec. 2.2 of the paper): template matching by
//! dependency-tree edit distance, slot filling by alignment, entity
//! linking, and SPARQL execution.

use crate::template::{slot_index, SlotBinding, Template};
use uqsj_nlp::align::{align_with_slots, partial_align_with_slots};
use uqsj_nlp::deptree::parse_dependency_tokens;
use uqsj_nlp::signature::NlSignature;
use uqsj_nlp::ted::tree_edit_distance;
use uqsj_nlp::token::tokenize;
use uqsj_nlp::Lexicon;
use uqsj_rdf::TripleStore;
use uqsj_sparql::{SparqlQuery, Term};

/// A deduplicated set of templates.
#[derive(Debug, Default)]
pub struct TemplateLibrary {
    templates: Vec<Template>,
}

impl TemplateLibrary {
    /// Empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a template; returns `false` (and keeps the higher-confidence
    /// copy) when an identical pattern pair already exists.
    pub fn add(&mut self, t: Template) -> bool {
        let key = t.dedup_key();
        if let Some(existing) = self.templates.iter_mut().find(|x| x.dedup_key() == key) {
            if t.confidence > existing.confidence {
                existing.confidence = t.confidence;
            }
            return false;
        }
        self.templates.push(t);
        true
    }

    /// Number of distinct templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The templates.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }
}

/// Result of answering one question.
#[derive(Clone, Debug, Default)]
pub struct QaOutcome {
    /// The instantiated SPARQL query, if a template applied.
    pub sparql: Option<SparqlQuery>,
    /// Decoded answers.
    pub answers: Vec<String>,
    /// Index of the chosen template.
    pub template_index: Option<usize>,
    /// Matching proportion φ of the chosen alignment.
    pub phi: f64,
}

/// Answer a question with the library. `min_phi` is the Table-5 knob:
/// `1.0` requires a full template match; lower values admit partial
/// matches ("we can also generate SPARQL queries based on this partial
/// match", Appendix F.2).
pub fn answer_question(
    library: &TemplateLibrary,
    lexicon: &Lexicon,
    store: &TripleStore,
    question: &str,
    min_phi: f64,
) -> QaOutcome {
    answer_with_candidates(library, 0..library.len(), lexicon, store, question, min_phi).0
}

/// Verification-side counters reported by [`answer_with_candidates`],
/// consumed by the serving layer's metrics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnswerStats {
    /// Candidate templates examined (alignment attempted).
    pub candidates_examined: usize,
    /// Candidates that survived alignment and entered TED ranking.
    pub candidates_aligned: usize,
    /// Exact tree-edit-distance computations performed.
    pub ted_computed: usize,
}

/// One aligned candidate awaiting TED ranking.
struct Aligned {
    /// Which library of the candidate slice the template lives in.
    lib: usize,
    index: usize,
    phi: f64,
    confidence: f64,
    slots: Vec<Vec<String>>,
    ted_lb: u32,
}

/// A template reference for [`answer_across`]: position `index` of
/// library `library` in the slice handed to the call. The serving layer's
/// sharded store passes `(shard, local index)` pairs here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CandidateRef {
    /// Index into the library slice.
    pub library: usize,
    /// Template index within that library.
    pub index: usize,
}

/// Result of [`answer_across`]: the outcome plus which library the chosen
/// template came from ([`QaOutcome::template_index`] is the index *within*
/// that library).
#[derive(Clone, Debug, Default)]
pub struct MultiAnswer {
    /// The Q/A outcome; `template_index` is local to `library`.
    pub outcome: QaOutcome,
    /// Library slot of the chosen template, if one applied.
    pub library: Option<usize>,
}

/// Answer a question by verifying only `candidates` (ascending template
/// indexes — the serving layer passes a signature-pruned subset, the
/// linear scan passes `0..len`). Produces *identical* outcomes to ranking
/// the full library as long as `candidates` contains every template that
/// can align: ranking is by (φ desc, TED asc, confidence desc, index asc),
/// exactly the order the eager sort used.
///
/// TED — the expensive step (O(n²·m²) Zhang–Shasha) — is evaluated
/// lazily: candidates within an equal-φ group are verified best-first by
/// their signature lower bound, and a candidate's exact TED is only
/// computed when the bound says it could still precede the current best.
/// Singleton groups skip TED entirely. Since `fill_and_execute` usually
/// succeeds on the first ranked candidate, most TED work is skipped
/// without changing any answer.
pub fn answer_with_candidates(
    library: &TemplateLibrary,
    candidates: impl IntoIterator<Item = usize>,
    lexicon: &Lexicon,
    store: &TripleStore,
    question: &str,
    min_phi: f64,
) -> (QaOutcome, AnswerStats) {
    let (multi, stats) = answer_across(
        &[library],
        candidates.into_iter().map(|index| CandidateRef { library: 0, index }),
        lexicon,
        store,
        question,
        min_phi,
    );
    (multi.outcome, stats)
}

/// Answer a question by ranking candidates drawn from *several* libraries
/// at once — the sharded template store's merge path. The total order is
/// (φ desc, TED asc, confidence desc, (library, index) asc): with a
/// single library this is exactly [`answer_with_candidates`]'s order, and
/// for a sharded store it equals ranking the concatenation of the shard
/// libraries in shard order. Candidates must arrive in ascending
/// (library, index) order for the equal-φ tiebreak to hold.
pub fn answer_across(
    libraries: &[&TemplateLibrary],
    candidates: impl IntoIterator<Item = CandidateRef>,
    lexicon: &Lexicon,
    store: &TripleStore,
    question: &str,
    min_phi: f64,
) -> (MultiAnswer, AnswerStats) {
    let mut stats = AnswerStats::default();
    let tokens = tokenize(question);
    if tokens.is_empty() {
        return (MultiAnswer::default(), stats);
    }
    let question_tree = parse_dependency_tokens(&tokens);
    let question_sig = NlSignature::of_tokens(&tokens);

    // Alignment pass over the candidate set, in ascending (library, index)
    // order.
    let mut aligned: Vec<Aligned> = Vec::new();
    for c in candidates {
        let t = &libraries[c.library].templates()[c.index];
        stats.candidates_examined += 1;
        let hit = if let Some(slots) = align_with_slots(&t.nl_tokens, &tokens) {
            Some((1.0, slots))
        } else if min_phi < 1.0 {
            partial_align_with_slots(&t.nl_tokens, &tokens)
                .filter(|(phi, _)| phi + 1e-12 >= min_phi)
        } else {
            None
        };
        if let Some((phi, slots)) = hit {
            let ted_lb = NlSignature::of_tokens(&t.nl_tokens).ted_lower_bound(&question_sig);
            aligned.push(Aligned {
                lib: c.library,
                index: c.index,
                phi,
                confidence: t.confidence,
                slots,
                ted_lb,
            });
        }
    }
    stats.candidates_aligned = aligned.len();

    // Stable sort by φ descending keeps ascending (library, index) order
    // within each equal-φ group, so group processing below reproduces the
    // original (φ, TED, confidence, insertion-order) total order.
    aligned.sort_by(|a, b| b.phi.partial_cmp(&a.phi).expect("phi is finite"));

    let mut start = 0;
    while start < aligned.len() {
        let mut end = start + 1;
        while end < aligned.len() && aligned[end].phi == aligned[start].phi {
            end += 1;
        }
        if let Some(answer) = try_group(
            libraries,
            &mut aligned[start..end],
            &question_tree,
            lexicon,
            store,
            &mut stats,
        ) {
            return (answer, stats);
        }
        start = end;
    }
    (MultiAnswer::default(), stats)
}

/// Try every candidate of one equal-φ group in exact (TED asc, confidence
/// desc, index asc) order, computing exact TEDs only when the signature
/// lower bound cannot already separate candidates.
fn try_group(
    libraries: &[&TemplateLibrary],
    group: &mut [Aligned],
    question_tree: &uqsj_nlp::DepTree,
    lexicon: &Lexicon,
    store: &TripleStore,
    stats: &mut AnswerStats,
) -> Option<MultiAnswer> {
    let attempt = |c: &Aligned| -> Option<MultiAnswer> {
        let template = &libraries[c.lib].templates()[c.index];
        fill_and_execute(template, &c.slots, lexicon, store).map(|(sparql, answers)| MultiAnswer {
            outcome: QaOutcome {
                sparql: Some(sparql),
                answers,
                template_index: Some(c.index),
                phi: c.phi,
            },
            library: Some(c.lib),
        })
    };

    if let [single] = group {
        // A singleton group needs no TED at all: its rank is decided by φ.
        return attempt(single);
    }

    // Unverified candidates ordered by (lower bound, library, index);
    // exact TEDs fill `verified` only while the smallest outstanding bound
    // could still beat (or tie, which matters for the confidence tiebreak)
    // the best verified candidate.
    group.sort_by_key(|c| (c.ted_lb, c.lib, c.index));
    let mut unverified: std::collections::VecDeque<&Aligned> = group.iter().collect();
    let mut verified: Vec<(u32, &Aligned)> = Vec::new();
    loop {
        while let Some(&next) = unverified.front() {
            let best_ted = verified.iter().map(|&(ted, _)| ted).min();
            if best_ted.is_some_and(|b| next.ted_lb > b) {
                break;
            }
            let template = &libraries[next.lib].templates()[next.index];
            let ted = tree_edit_distance(&template.dep_tree, question_tree);
            stats.ted_computed += 1;
            verified.push((ted, next));
            unverified.pop_front();
        }
        let Some(best) = verified
            .iter()
            .enumerate()
            .min_by(|(_, (ta, a)), (_, (tb, b))| {
                ta.cmp(tb)
                    .then(b.confidence.partial_cmp(&a.confidence).expect("confidence is finite"))
                    .then((a.lib, a.index).cmp(&(b.lib, b.index)))
            })
            .map(|(k, _)| k)
        else {
            return None; // group exhausted
        };
        let (_, candidate) = verified.swap_remove(best);
        if let Some(answer) = attempt(candidate) {
            return Some(answer);
        }
    }
}

/// Instantiate and execute, disambiguating entity slots against the
/// knowledge base: candidate combinations are tried in descending joint
/// confidence and the first non-empty result wins; if every combination
/// is empty, the most confident instantiation is returned. This is where
/// template-based Q/A beats direct translation — the SPARQL pattern
/// supplies enough context to reject linkings the data contradicts.
fn fill_and_execute(
    template: &Template,
    slot_phrases: &[Vec<String>],
    lexicon: &Lexicon,
    store: &TripleStore,
) -> Option<(SparqlQuery, Vec<String>)> {
    // Ranked candidate lists per slot (entities by confidence, or the
    // class resolution).
    let mut options: Vec<Vec<(String, f64)>> = Vec::with_capacity(slot_phrases.len());
    for (i, phrase_tokens) in slot_phrases.iter().enumerate() {
        if template.slots.get(i) != Some(&SlotBinding::Bound) {
            options.push(vec![(String::new(), 1.0)]); // unused slot
            continue;
        }
        let phrase = phrase_tokens.join(" ");
        let mut cands: Vec<(String, f64)> = match lexicon.link(&phrase) {
            Some(cs) => cs.iter().map(|c| (c.entity.clone(), c.prob)).collect(),
            None => match lexicon.class_of_noun(&phrase) {
                Some(class) => vec![(class.to_owned(), 1.0)],
                None => return None,
            },
        };
        cands.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite confidence"));
        cands.truncate(3);
        options.push(cands);
    }
    // Enumerate combinations in descending joint confidence (small
    // product space: <= 3^slots, slots are few).
    let mut combos: Vec<(Vec<usize>, f64)> = vec![(vec![0; options.len()], 1.0)];
    for (s, opts) in options.iter().enumerate() {
        let mut next = Vec::with_capacity(combos.len() * opts.len());
        for (choice, p) in &combos {
            for (ci, (_, cp)) in opts.iter().enumerate() {
                let mut c = choice.clone();
                c[s] = ci;
                next.push((c, p * cp));
            }
        }
        combos = next;
    }
    combos.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite confidence"));

    let mut fallback: Option<(SparqlQuery, Vec<String>)> = None;
    for (choice, _) in combos {
        let mut sparql = template.sparql.clone();
        for triple in &mut sparql.triples {
            for t in [&mut triple.subject, &mut triple.object] {
                if let Some(i) = slot_index(t) {
                    if template.slots.get(i) != Some(&SlotBinding::Bound) {
                        return None; // placeholder without a usable slot
                    }
                    *t = Term::Iri(options[i][choice[i]].0.clone());
                }
            }
        }
        let answers: Vec<String> =
            uqsj_rdf::bgp::evaluate(store, &sparql).into_iter().map(|row| row.join("\t")).collect();
        if !answers.is_empty() {
            return Some((sparql, answers));
        }
        if fallback.is_none() {
            fallback = Some((sparql, answers));
        }
    }
    fallback
}

/// Instantiate a template's SPARQL with linked slot phrases. Entity
/// phrases link to their most confident candidate; class nouns resolve to
/// their class. Fails if any *bound* slot cannot be linked.
pub fn fill_slots(
    template: &Template,
    slot_phrases: &[Vec<String>],
    lexicon: &Lexicon,
) -> Option<SparqlQuery> {
    if slot_phrases.len() != template.slot_count() {
        return None;
    }
    let mut sparql = template.sparql.clone();
    for triple in &mut sparql.triples {
        for t in [&mut triple.subject, &mut triple.object] {
            if let Some(i) = slot_index(t) {
                if template.slots.get(i) != Some(&SlotBinding::Bound) {
                    return None; // placeholder without a usable slot
                }
                let phrase = slot_phrases[i].join(" ");
                let linked = link_phrase(lexicon, &phrase)?;
                *t = Term::Iri(linked);
            }
        }
    }
    Some(sparql)
}

/// Entity-link a slot phrase: top-confidence entity, else class noun.
fn link_phrase(lexicon: &Lexicon, phrase: &str) -> Option<String> {
    if let Some(cands) = lexicon.link(phrase) {
        return cands
            .iter()
            .max_by(|a, b| a.prob.partial_cmp(&b.prob).expect("finite"))
            .map(|c| c.entity.clone());
    }
    lexicon.class_of_noun(phrase).map(str::to_owned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::slot_term;
    use uqsj_nlp::align::SLOT_TOKEN;
    use uqsj_sparql::Triple;

    fn library() -> TemplateLibrary {
        // "Which <_> graduated from <_> ?" →
        // SELECT ?x { ?x type SLOT0 . ?x graduatedFrom SLOT1 }
        let sparql = SparqlQuery {
            select: vec!["x".into()],
            triples: vec![
                Triple {
                    subject: Term::Var("x".into()),
                    predicate: Term::Iri("type".into()),
                    object: slot_term(0),
                },
                Triple {
                    subject: Term::Var("x".into()),
                    predicate: Term::Iri("graduatedFrom".into()),
                    object: slot_term(1),
                },
            ],
        };
        let t = Template::new(
            vec![
                "Which".into(),
                SLOT_TOKEN.into(),
                "graduated".into(),
                "from".into(),
                SLOT_TOKEN.into(),
                "?".into(),
            ],
            sparql,
            vec![SlotBinding::Bound, SlotBinding::Bound],
            0.9,
        );
        let mut lib = TemplateLibrary::new();
        assert!(lib.add(t));
        lib
    }

    fn store() -> TripleStore {
        let mut s = TripleStore::new();
        s.insert("Alice", "type", "Physicist");
        s.insert("Alice", "graduatedFrom", "Carnegie_Mellon_University");
        s.insert("Bob", "type", "Physicist");
        s.insert("Bob", "graduatedFrom", "Harvard_University");
        s.ensure_indexes();
        s
    }

    #[test]
    fn answers_example1_of_the_paper() {
        let lib = library();
        let lex = uqsj_nlp::lexicon::paper_lexicon();
        let mut lex = lex;
        lex.add_class("physicist", "Physicist");
        let store = store();
        let out = answer_question(&lib, &lex, &store, "Which physicist graduated from CMU?", 1.0);
        assert_eq!(out.answers, vec!["Alice".to_string()]);
        assert!((out.phi - 1.0).abs() < 1e-12);
        let sparql = out.sparql.unwrap().to_string();
        assert!(sparql.contains("Physicist"), "{sparql}");
        assert!(sparql.contains("Carnegie_Mellon_University"), "{sparql}");
    }

    #[test]
    fn no_match_returns_empty() {
        let lib = library();
        let lex = uqsj_nlp::lexicon::paper_lexicon();
        let store = store();
        let out = answer_question(&lib, &lex, &store, "Name every mountain on Mars", 1.0);
        assert!(out.sparql.is_none());
        assert!(out.answers.is_empty());
    }

    #[test]
    fn partial_match_mode_answers_with_trailing_noise() {
        let lib = library();
        let mut lex = uqsj_nlp::lexicon::paper_lexicon();
        lex.add_class("physicist", "Physicist");
        let store = store();
        let q = "Which physicist graduated from CMU please tell me now quickly";
        let strict = answer_question(&lib, &lex, &store, q, 1.0);
        assert!(strict.sparql.is_none(), "full match should fail");
        let lenient = answer_question(&lib, &lex, &store, q, 0.5);
        assert_eq!(lenient.answers, vec!["Alice".to_string()]);
        assert!(lenient.phi < 1.0);
    }

    #[test]
    fn dedup_keeps_highest_confidence() {
        let mut lib = library();
        let t2 = {
            let t = &lib.templates()[0];
            let mut c = t.clone();
            c.confidence = 0.99;
            c
        };
        assert!(!lib.add(t2));
        assert_eq!(lib.len(), 1);
        assert!((lib.templates()[0].confidence - 0.99).abs() < 1e-12);
    }

    /// The pre-refactor ranking: compute every candidate's TED eagerly,
    /// then one stable 3-key sort. Kept here as the reference oracle for
    /// the lazy best-first verification in `answer_with_candidates`.
    fn eager_answer(
        library: &TemplateLibrary,
        lexicon: &Lexicon,
        store: &TripleStore,
        question: &str,
        min_phi: f64,
    ) -> QaOutcome {
        let tokens = tokenize(question);
        if tokens.is_empty() {
            return QaOutcome::default();
        }
        let question_tree = parse_dependency_tokens(&tokens);
        #[allow(clippy::type_complexity)]
        let mut candidates: Vec<(usize, f64, u32, Vec<Vec<String>>)> = Vec::new();
        for (i, t) in library.templates().iter().enumerate() {
            if let Some(slots) = align_with_slots(&t.nl_tokens, &tokens) {
                let ted = tree_edit_distance(&t.dep_tree, &question_tree);
                candidates.push((i, 1.0, ted, slots));
            } else if min_phi < 1.0 {
                if let Some((phi, slots)) = partial_align_with_slots(&t.nl_tokens, &tokens) {
                    if phi + 1e-12 >= min_phi {
                        let ted = tree_edit_distance(&t.dep_tree, &question_tree);
                        candidates.push((i, phi, ted, slots));
                    }
                }
            }
        }
        candidates.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).expect("phi is finite").then(a.2.cmp(&b.2)).then(
                library.templates()[b.0]
                    .confidence
                    .partial_cmp(&library.templates()[a.0].confidence)
                    .expect("confidence is finite"),
            )
        });
        for (i, phi, _, slots) in candidates {
            let template = &library.templates()[i];
            if let Some((sparql, answers)) = fill_and_execute(template, &slots, lexicon, store) {
                return QaOutcome { sparql: Some(sparql), answers, template_index: Some(i), phi };
            }
        }
        QaOutcome::default()
    }

    /// Several templates sharing token structure so that equal-φ groups
    /// have more than one member and the lazy TED path actually has
    /// ordering decisions to make.
    fn crowded_library() -> TemplateLibrary {
        let mk = |tokens: &[&str], predicate: &str, confidence: f64| {
            let sparql = SparqlQuery {
                select: vec!["x".into()],
                triples: vec![
                    Triple {
                        subject: Term::Var("x".into()),
                        predicate: Term::Iri("type".into()),
                        object: slot_term(0),
                    },
                    Triple {
                        subject: Term::Var("x".into()),
                        predicate: Term::Iri(predicate.into()),
                        object: slot_term(1),
                    },
                ],
            };
            Template::new(
                tokens.iter().map(|t| (*t).to_owned()).collect(),
                sparql,
                vec![SlotBinding::Bound, SlotBinding::Bound],
                confidence,
            )
        };
        let mut lib = TemplateLibrary::new();
        let s = SLOT_TOKEN;
        lib.add(mk(&["Which", s, "graduated", "from", s, "?"], "graduatedFrom", 0.9));
        lib.add(mk(&["Which", s, "graduated", "from", s, "?"], "alumnusOf", 0.95));
        lib.add(mk(&["Which", s, "born", "in", s, "?"], "bornIn", 0.8));
        lib.add(Template::new(
            ["Who", "graduated", "from", s, "?"].map(String::from).to_vec(),
            SparqlQuery {
                select: vec!["x".into()],
                triples: vec![Triple {
                    subject: Term::Var("x".into()),
                    predicate: Term::Iri("graduatedFrom".into()),
                    object: slot_term(0),
                }],
            },
            vec![SlotBinding::Bound],
            0.7,
        ));
        lib.add(mk(&["Which", s, "is", "married", "to", s, "?"], "spouse", 0.85));
        lib.add(mk(&["Which", s, "works", "at", s, "?"], "worksAt", 0.6));
        lib
    }

    #[test]
    fn lazy_ranking_matches_eager_ranking() {
        let lib = crowded_library();
        let mut lex = uqsj_nlp::lexicon::paper_lexicon();
        lex.add_class("physicist", "Physicist");
        let store = store();
        let questions = [
            "Which physicist graduated from CMU?",
            "Which physicist born in CMU?",
            "Who graduated from CMU?",
            "Which physicist graduated from CMU please tell me now",
            "Which physicist is married to CMU?",
            "Name every mountain on Mars",
            "",
        ];
        for q in questions {
            for min_phi in [1.0, 0.6, 0.3] {
                let want = eager_answer(&lib, &lex, &store, q, min_phi);
                let (got, stats) =
                    answer_with_candidates(&lib, 0..lib.len(), &lex, &store, q, min_phi);
                assert_eq!(
                    got.sparql.as_ref().map(ToString::to_string),
                    want.sparql.as_ref().map(ToString::to_string),
                    "sparql diverged on {q:?} min_phi={min_phi}"
                );
                assert_eq!(got.answers, want.answers, "answers diverged on {q:?}");
                assert_eq!(got.template_index, want.template_index, "index diverged on {q:?}");
                assert!((got.phi - want.phi).abs() < 1e-12, "phi diverged on {q:?}");
                assert!(
                    stats.ted_computed <= stats.candidates_aligned,
                    "lazy path must never exceed one TED per aligned candidate"
                );
            }
        }
    }

    #[test]
    fn answer_across_split_libraries_matches_whole_library() {
        // Deal the crowded library round-robin into 3 sub-libraries; the
        // (library, index) ascending candidate order then visits templates
        // in an order that differs from insertion, but the concatenation
        // of the sub-libraries in slice order IS a valid library, and
        // answer_across must rank exactly like a linear scan over it.
        let whole = crowded_library();
        let parts_count = 3;
        let mut parts: Vec<TemplateLibrary> =
            (0..parts_count).map(|_| TemplateLibrary::new()).collect();
        for (i, t) in whole.templates().iter().enumerate() {
            parts[i % parts_count].add(t.clone());
        }
        let mut concat = TemplateLibrary::new();
        for p in &parts {
            for t in p.templates() {
                concat.add(t.clone());
            }
        }
        let part_refs: Vec<&TemplateLibrary> = parts.iter().collect();
        let candidates: Vec<CandidateRef> = (0..parts_count)
            .flat_map(|lib| {
                (0..part_refs[lib].len()).map(move |index| CandidateRef { library: lib, index })
            })
            .collect();

        let mut lex = uqsj_nlp::lexicon::paper_lexicon();
        lex.add_class("physicist", "Physicist");
        let store = store();
        let questions = [
            "Which physicist graduated from CMU?",
            "Which physicist born in CMU?",
            "Who graduated from CMU?",
            "Which physicist graduated from CMU please tell me now",
            "Name every mountain on Mars",
        ];
        for q in questions {
            for min_phi in [1.0, 0.5] {
                let want = answer_question(&concat, &lex, &store, q, min_phi);
                let (got, _) =
                    answer_across(&part_refs, candidates.iter().copied(), &lex, &store, q, min_phi);
                assert_eq!(
                    got.outcome.sparql.as_ref().map(ToString::to_string),
                    want.sparql.as_ref().map(ToString::to_string),
                    "sparql diverged on {q:?} min_phi={min_phi}"
                );
                assert_eq!(got.outcome.answers, want.answers, "answers diverged on {q:?}");
                assert!((got.outcome.phi - want.phi).abs() < 1e-12, "phi diverged on {q:?}");
                // The chosen template must be the same one: its global
                // index in the concatenation is the prefix sum of the
                // earlier parts plus the local index.
                let global = got.library.map(|lib| {
                    part_refs[..lib].iter().map(|p| p.len()).sum::<usize>()
                        + got.outcome.template_index.expect("library implies index")
                });
                assert_eq!(global, want.template_index, "template diverged on {q:?}");
            }
        }
    }

    #[test]
    fn unlinkable_slot_fails_gracefully() {
        let lib = library();
        let lex = uqsj_nlp::lexicon::paper_lexicon(); // no "physicist" class
        let store = store();
        let out = answer_question(&lib, &lex, &store, "Which warlock graduated from CMU?", 1.0);
        assert!(out.sparql.is_none());
    }
}
