//! Template generation from one similar graph pair (Sec. 2.1, Step 3 /
//! Fig. 4 of the paper).
//!
//! Given a question analysis (the `g` side), a SPARQL query (the `q`
//! side), and the GED vertex mapping between their join graphs, every
//! entity/class *mention* of the question whose vertex maps onto a
//! constant of the query becomes a paired slot: the mention's tokens are
//! replaced by `<_>` in the NL pattern and the constant is replaced by a
//! slot placeholder in the SPARQL pattern, preserving the correspondence.

use crate::template::{slot_term, SlotBinding, Template};
use uqsj_ged::astar::GedResult;
use uqsj_nlp::align::SLOT_TOKEN;
use uqsj_nlp::semantic::QuestionAnalysis;
use uqsj_sparql::{SparqlQuery, Term};

/// Everything needed to build one template.
pub struct TemplateSource<'a> {
    /// The question analysis (g side of the matched pair).
    pub analysis: &'a QuestionAnalysis,
    /// The matched SPARQL query (q side).
    pub query: &'a SparqlQuery,
    /// SPARQL term behind each vertex of the query's join graph.
    pub query_terms: &'a [Term],
    /// GED mapping from query-graph vertices to question-graph vertices.
    pub mapping: &'a GedResult,
    /// Similarity probability of the pair.
    pub confidence: f64,
}

/// Build a template; `None` when no mention binds into the query (such a
/// pair carries no reusable structure).
pub fn generate_template(src: &TemplateSource<'_>) -> Option<Template> {
    // Invert the q→g mapping to g→q.
    let g_vertex_count = src.analysis.vertices.len();
    let mut g_to_q: Vec<Option<usize>> = vec![None; g_vertex_count];
    for (qv, image) in src.mapping.mapping.iter().enumerate() {
        if let Some(gv) = image {
            if gv.index() < g_vertex_count {
                g_to_q[gv.index()] = Some(qv);
            }
        }
    }

    let mut sparql = src.query.clone();
    let mut nl_tokens: Vec<String> = Vec::new();
    let mut slots: Vec<SlotBinding> = Vec::new();
    let mut bound = 0usize;

    // Mention spans are in token order; walk the tokens, cutting slots.
    let mut cursor = 0usize;
    for &(g_vertex, start, end) in &src.analysis.mention_spans {
        while cursor < start {
            nl_tokens.push(src.analysis.tokens[cursor].clone());
            cursor += 1;
        }
        let slot_id = slots.len();
        nl_tokens.push(SLOT_TOKEN.to_owned());
        cursor = end;

        // Which SPARQL constant does this mention map to?
        let binding = g_to_q[g_vertex]
            .and_then(|qv| src.query_terms.get(qv))
            .filter(|term| !term.is_var())
            .cloned();
        match binding {
            Some(term) => {
                let placeholder = slot_term(slot_id);
                let mut replaced = false;
                for triple in &mut sparql.triples {
                    for t in [&mut triple.subject, &mut triple.object] {
                        if *t == term {
                            *t = placeholder.clone();
                            replaced = true;
                        }
                    }
                }
                if replaced {
                    bound += 1;
                    slots.push(SlotBinding::Bound);
                } else {
                    slots.push(SlotBinding::Unbound);
                }
            }
            None => slots.push(SlotBinding::Unbound),
        }
    }
    while cursor < src.analysis.tokens.len() {
        nl_tokens.push(src.analysis.tokens[cursor].clone());
        cursor += 1;
    }

    if bound == 0 {
        return None;
    }
    Some(Template::new(nl_tokens, sparql, slots, src.confidence))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_graph::SymbolTable;
    use uqsj_nlp::lexicon::paper_lexicon;
    use uqsj_nlp::semantic::analyze_question;
    use uqsj_sparql::parse;

    /// Reproduce the paper's Fig. 4: question "which politician graduated
    /// from CIT?" joined with the Artist/Harvard query q1 yields the
    /// template "Which <_> graduated from <_>?" with two SPARQL slots.
    #[test]
    fn reproduces_figure4() {
        let lex = paper_lexicon();
        let analysis = analyze_question(&lex, "Which politician graduated from CIT?").unwrap();
        let mut table = SymbolTable::new();
        let g = analysis.uncertain_graph(&mut table);

        // q1 of the paper.
        let query = parse(
            "SELECT ?person WHERE { ?person type Artist . ?person graduatedFrom Harvard_University . }",
        )
        .unwrap();
        // Build q's join graph with class abstraction by hand: Artist and
        // Harvard_University(→University) mirror the paper's Fig. 3.
        let mut q_graph = uqsj_graph::Graph::new();
        let v_person = q_graph.add_vertex(table.intern("?person"));
        let v_artist = q_graph.add_vertex(table.intern("Artist"));
        let v_univ = q_graph.add_vertex(table.intern("University"));
        q_graph.add_edge(v_person, v_artist, table.intern("type"));
        q_graph.add_edge(v_person, v_univ, table.intern("graduatedFrom"));
        let query_terms = vec![
            uqsj_sparql::Term::Var("person".into()),
            uqsj_sparql::Term::Iri("Artist".into()),
            uqsj_sparql::Term::Iri("Harvard_University".into()),
        ];

        // Verify the pair with SimP and take the best-world mapping, as
        // the join would.
        let outcome = uqsj_uncertain::verify_simp(&table, &q_graph, &g, 2, 0.1);
        assert!(outcome.passed);
        let mapping = outcome.best_mapping.unwrap();

        let template = generate_template(&TemplateSource {
            analysis: &analysis,
            query: &query,
            query_terms: &query_terms,
            mapping: &mapping,
            confidence: outcome.prob,
        })
        .expect("template");

        assert_eq!(template.nl_pattern(), "Which <_> graduated from <_> ?");
        let text = template.sparql.to_string();
        assert!(text.contains("__SLOT_0__"), "{text}");
        assert!(text.contains("__SLOT_1__"), "{text}");
        assert!(!text.contains("Artist") && !text.contains("Harvard_University"), "{text}");
        assert_eq!(template.slots, vec![SlotBinding::Bound, SlotBinding::Bound]);
    }

    #[test]
    fn unbound_when_nothing_maps() {
        let lex = paper_lexicon();
        let analysis = analyze_question(&lex, "Which politician graduated from CIT?").unwrap();
        // A mapping that deletes every query vertex binds nothing.
        let mapping = GedResult { distance: 99, mapping: vec![None, None, None] };
        let query = parse("SELECT ?p WHERE { ?p type Artist . }").unwrap();
        let query_terms =
            vec![uqsj_sparql::Term::Var("p".into()), uqsj_sparql::Term::Iri("Artist".into())];
        let src = TemplateSource {
            analysis: &analysis,
            query: &query,
            query_terms: &query_terms,
            mapping: &mapping,
            confidence: 0.5,
        };
        assert!(generate_template(&src).is_none());
    }
}
