//! Property tests for template machinery: the text format round-trips
//! arbitrary template libraries, and slot filling is consistent with the
//! alignment that produced the slots.

use proptest::prelude::*;
use uqsj_sparql::{SparqlQuery, Term, Triple};
use uqsj_template::io::{from_text, to_text};
use uqsj_template::template::slot_term;
use uqsj_template::{SlotBinding, Template, TemplateLibrary};

const WORDS: [&str; 8] = ["Which", "graduated", "from", "married", "to", "born", "in", "?"];
const PREDICATES: [&str; 4] = ["type", "graduatedFrom", "spouse", "birthPlace"];

#[derive(Clone, Debug)]
struct RawTemplate {
    words: Vec<u8>,
    slot_positions: Vec<u8>,
    predicates: Vec<u8>,
    confidence: f64,
}

fn template_strategy() -> impl Strategy<Value = RawTemplate> {
    (
        prop::collection::vec(0u8..WORDS.len() as u8, 2..8),
        prop::collection::vec(0u8..8, 1..3),
        prop::collection::vec(0u8..PREDICATES.len() as u8, 1..4),
        0.0f64..1.0,
    )
        .prop_map(|(words, slot_positions, predicates, confidence)| RawTemplate {
            words,
            slot_positions,
            predicates,
            confidence,
        })
}

fn build(raw: &RawTemplate) -> Template {
    let mut nl: Vec<String> = raw.words.iter().map(|&i| WORDS[i as usize].to_owned()).collect();
    // Insert slots at (deduplicated, in-range) positions.
    let mut positions: Vec<usize> =
        raw.slot_positions.iter().map(|&p| p as usize % nl.len()).collect();
    positions.sort_unstable();
    positions.dedup();
    for (offset, p) in positions.iter().enumerate() {
        nl.insert(p + offset, "<_>".to_owned());
    }
    let slot_count = positions.len();
    // SPARQL pattern referencing each slot once.
    let mut triples = Vec::new();
    for (i, &p) in raw.predicates.iter().enumerate() {
        let object = if i < slot_count { slot_term(i) } else { Term::Iri("Thing".into()) };
        triples.push(Triple {
            subject: Term::Var("x".into()),
            predicate: Term::Iri(PREDICATES[p as usize].into()),
            object,
        });
    }
    // Any slot beyond the triples count is unbound.
    let slots: Vec<SlotBinding> = (0..slot_count)
        .map(|i| if i < raw.predicates.len() { SlotBinding::Bound } else { SlotBinding::Unbound })
        .collect();
    Template::new(nl, SparqlQuery { select: vec!["x".into()], triples }, slots, raw.confidence)
}

proptest! {
    #[test]
    fn io_roundtrips_arbitrary_libraries(raws in prop::collection::vec(template_strategy(), 1..6)) {
        let mut lib = TemplateLibrary::new();
        for raw in &raws {
            lib.add(build(raw));
        }
        let text = to_text(&lib);
        let parsed = from_text(&text).expect("own output parses");
        prop_assert_eq!(parsed.len(), lib.len());
        for (a, b) in lib.templates().iter().zip(parsed.templates()) {
            prop_assert_eq!(&a.nl_tokens, &b.nl_tokens);
            prop_assert_eq!(&a.sparql, &b.sparql);
            prop_assert_eq!(&a.slots, &b.slots);
            prop_assert!((a.confidence - b.confidence).abs() < 1e-6);
        }
        // Fixpoint.
        prop_assert_eq!(to_text(&parsed), text);
    }

    #[test]
    fn dedup_is_idempotent(raw in template_strategy()) {
        let mut lib = TemplateLibrary::new();
        let t = build(&raw);
        prop_assert!(lib.add(t.clone()));
        prop_assert!(!lib.add(t));
        prop_assert_eq!(lib.len(), 1);
    }
}
