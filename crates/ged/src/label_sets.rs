//! Label multiset intersections under the wildcard rule, and the
//! vertex-label bipartite graph of Def. 10.
//!
//! `λ_V(q, g)` / `λ_E(q, g)` count the *maximum number of label pairs that
//! can be matched at zero substitution cost* between two label multisets.
//! Without wildcards this is the ordinary multiset intersection used by the
//! label-multiset bound of Zhao et al.; with wildcards (SPARQL variables)
//! it is a bipartite matching problem, for which we have a closed form
//! (validated against Hopcroft–Karp in the tests).

use uqsj_graph::{Graph, Symbol, SymbolTable, UncertainGraph};
use uqsj_matching::{hopcroft_karp, BipartiteGraph};

/// Maximum zero-cost matching size between two label multisets under the
/// wildcard rule.
///
/// Both inputs may be in any order; they are counted, not consumed.
pub fn multiset_lambda(table: &SymbolTable, a: &[Symbol], b: &[Symbol]) -> usize {
    // Split into wildcards and normals.
    let mut an: Vec<Symbol> = Vec::with_capacity(a.len());
    let mut aw = 0usize;
    for &s in a {
        if table.is_wildcard(s) {
            aw += 1;
        } else {
            an.push(s);
        }
    }
    let mut bn: Vec<Symbol> = Vec::with_capacity(b.len());
    let mut bw = 0usize;
    for &s in b {
        if table.is_wildcard(s) {
            bw += 1;
        } else {
            bn.push(s);
        }
    }
    an.sort_unstable();
    bn.sort_unstable();
    let inter = sorted_multiset_intersection(&an, &bn);
    let an_rest = an.len() - inter;
    let bn_rest = bn.len() - inter;
    // Leftover normals on the two sides share no label, so they can only be
    // matched by wildcards of the other side. Saturate the exclusive
    // demands first, then pair leftover wildcards with each other.
    let x = aw.min(bn_rest); // a-wildcards consumed by b-normals
    let z = bw.min(an_rest); // b-wildcards consumed by a-normals
    let y = (aw - x).min(bw - z); // wildcard-to-wildcard
    inter + x + z + y
}

/// Size of the intersection of two sorted multisets (exact equality).
pub fn sorted_multiset_intersection(a: &[Symbol], b: &[Symbol]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// `λ_V(q, g^c)` for two certain graphs.
pub fn lambda_v_certain(table: &SymbolTable, a: &Graph, b: &Graph) -> usize {
    multiset_lambda(table, a.vertex_labels(), b.vertex_labels())
}

/// `λ_E(q, g^c)` for two certain graphs.
pub fn lambda_e_certain(table: &SymbolTable, a: &Graph, b: &Graph) -> usize {
    multiset_lambda(table, &a.edge_label_multiset(), &b.edge_label_multiset())
}

/// `λ_E(q, g)` between a certain and an uncertain graph (edge labels are
/// certain in both models).
pub fn lambda_e_uncertain(table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> usize {
    multiset_lambda(table, &q.edge_label_multiset(), &g.edge_label_multiset())
}

/// Upper bound on `λ_V(q, pw(g))` over **all** possible worlds of `g`:
/// the maximum matching in the vertex-label bipartite graph of Def. 10.
///
/// There is an edge between `v_i ∈ V(g)` and `u_j ∈ V(q)` iff some
/// alternative label of `v_i` matches `l(u_j)` under the wildcard rule.
pub fn lambda_v_uncertain(table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> usize {
    let sets: Vec<Vec<Symbol>> =
        g.vertices().iter().map(|v| v.alternatives.iter().map(|a| a.label).collect()).collect();
    lambda_v_label_sets(table, q, &sets)
}

/// Same as [`lambda_v_uncertain`], but over caller-provided per-vertex
/// label sets. This is what the possible-world-group machinery uses: a
/// group restricts each vertex to a subset of its alternatives, and the
/// bound is recomputed over the restricted sets (Sec. 6.2).
pub fn lambda_v_label_sets(table: &SymbolTable, q: &Graph, g_label_sets: &[Vec<Symbol>]) -> usize {
    let mut bg = BipartiteGraph::new(g_label_sets.len(), q.vertex_count());
    for (i, labels) in g_label_sets.iter().enumerate() {
        for (j, &ql) in q.vertex_labels().iter().enumerate() {
            if labels.iter().any(|&l| uqsj_graph::labels_match(table, l, ql)) {
                bg.add_edge(i, j);
            }
        }
    }
    hopcroft_karp(&bg).0
}

/// Substitution cost between two single labels: 0 if they match under the
/// wildcard rule, else 1.
#[inline]
pub fn label_sub_cost(table: &SymbolTable, a: Symbol, b: Symbol) -> u32 {
    u32::from(!uqsj_graph::labels_match(table, a, b))
}

/// Edit cost between two edge-label multisets on the same ordered vertex
/// pair: matched pairs substitute (0 if matching, there is no cheaper
/// option), surplus edges are inserted/deleted.
///
/// Equals `max(|A|, |B|) - λ(A, B)`.
pub fn edge_multiset_cost(table: &SymbolTable, a: &[Symbol], b: &[Symbol]) -> u32 {
    let lam = multiset_lambda(table, a, b);
    (a.len().max(b.len()) - lam) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_graph::GraphBuilder;

    fn syms(table: &mut SymbolTable, names: &[&str]) -> Vec<Symbol> {
        names.iter().map(|n| table.intern(n)).collect()
    }

    /// Reference implementation via Hopcroft–Karp.
    fn lambda_ref(table: &SymbolTable, a: &[Symbol], b: &[Symbol]) -> usize {
        let mut g = BipartiteGraph::new(a.len(), b.len());
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                if uqsj_graph::labels_match(table, x, y) {
                    g.add_edge(i, j);
                }
            }
        }
        hopcroft_karp(&g).0
    }

    #[test]
    fn plain_multiset_intersection() {
        let mut t = SymbolTable::new();
        let a = syms(&mut t, &["A", "B", "B", "C"]);
        let b = syms(&mut t, &["B", "C", "C", "D"]);
        assert_eq!(multiset_lambda(&t, &a, &b), 2); // B, C
    }

    #[test]
    fn wildcards_match_anything() {
        let mut t = SymbolTable::new();
        let a = syms(&mut t, &["?x", "A"]);
        let b = syms(&mut t, &["B", "C"]);
        assert_eq!(multiset_lambda(&t, &a, &b), 1); // ?x matches one of B/C
        let c = syms(&mut t, &["?y", "A"]);
        assert_eq!(multiset_lambda(&t, &a, &c), 2); // ?x-?y (or A-A, ?x-A)
    }

    #[test]
    fn closed_form_matches_hopcroft_karp() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut t = SymbolTable::new();
        let pool = syms(&mut t, &["?x", "?y", "A", "B", "C", "D"]);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..500 {
            let na = rng.gen_range(0..8);
            let nb = rng.gen_range(0..8);
            let a: Vec<Symbol> = (0..na).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            let b: Vec<Symbol> = (0..nb).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            assert_eq!(multiset_lambda(&t, &a, &b), lambda_ref(&t, &a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn edge_multiset_cost_examples() {
        let mut t = SymbolTable::new();
        let p = syms(&mut t, &["p"]);
        let q = syms(&mut t, &["q"]);
        let pq = syms(&mut t, &["p", "q"]);
        assert_eq!(edge_multiset_cost(&t, &p, &p), 0);
        assert_eq!(edge_multiset_cost(&t, &p, &q), 1); // substitution
        assert_eq!(edge_multiset_cost(&t, &p, &[]), 1); // deletion
        assert_eq!(edge_multiset_cost(&t, &pq, &p), 1); // one delete
        assert_eq!(edge_multiset_cost(&t, &pq, &q), 1);
    }

    #[test]
    fn lambda_v_uncertain_uses_best_alternative() {
        let mut t = SymbolTable::new();
        // q has one vertex labeled Actor.
        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("a", "Actor");
        let q = bq.into_graph();
        // g has one vertex that may be NBA_Player (0.6) or Actor (0.4).
        let mut bg = GraphBuilder::new(&mut t);
        bg.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        let g = bg.into_uncertain();
        assert_eq!(lambda_v_uncertain(&t, &q, &g), 1);
    }

    #[test]
    fn lambda_v_uncertain_is_a_matching_not_a_count() {
        let mut t = SymbolTable::new();
        // Two g vertices can both be Actor, but q has only one Actor:
        // matching size must be 1, not 2.
        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("a", "Actor");
        bq.vertex("c", "City");
        let q = bq.into_graph();
        let mut bg = GraphBuilder::new(&mut t);
        bg.uncertain_vertex("x", &[("Actor", 1.0)]);
        bg.uncertain_vertex("y", &[("Actor", 0.5), ("Band", 0.5)]);
        let g = bg.into_uncertain();
        assert_eq!(lambda_v_uncertain(&t, &q, &g), 1);
    }

    #[test]
    fn paper_figure8_bipartite_matching() {
        // Fig. 8: vertex label bipartite graph of g1 and q2. We reproduce
        // the label sets; the maximum matching should include the variable
        // vertices (wildcards) and the NS/A/Ci/C matches.
        let mut t = SymbolTable::new();
        // q2 vertex labels (8 vertices): ?x, NS, A, C, Ci, ?a, ?b, ?c
        let mut bq = GraphBuilder::new(&mut t);
        for (k, l) in [
            ("u1", "?x"),
            ("u2", "NS"),
            ("u3", "A"),
            ("u4", "C"),
            ("u5", "Ci"),
            ("u6", "?a"),
            ("u7", "?b"),
            ("u8", "?c"),
        ] {
            bq.vertex(k, l);
        }
        let q = bq.into_graph();
        // g1 (10 vertices): ?x, {NS,P,A}, A, C, ?b, {S,Ci}, Ci, ?a, ?c, ?d
        let mut bg = GraphBuilder::new(&mut t);
        bg.vertex("v1", "?x");
        bg.uncertain_vertex("v2", &[("NS", 0.6), ("P", 0.3), ("A", 0.1)]);
        bg.vertex("v3", "A");
        bg.vertex("v4", "C");
        bg.vertex("v5", "?b");
        bg.uncertain_vertex("v6", &[("S", 0.7), ("Ci", 0.3)]);
        bg.vertex("v7", "Ci");
        bg.vertex("v8", "?a");
        bg.vertex("v9", "?c");
        bg.vertex("v10", "?d");
        let g = bg.into_uncertain();
        // All 8 q vertices can be matched (4 wildcards in q match anything;
        // NS, A, C, Ci all available in g).
        assert_eq!(lambda_v_uncertain(&t, &q, &g), 8);
    }
}
