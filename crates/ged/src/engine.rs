//! Reusable τ-bounded A\* engine with a counted-multiset heuristic.
//!
//! This is the verification fast path behind [`crate::ged`] /
//! [`crate::ged_bounded`]. It reproduces the reference search in
//! [`crate::reference`] bit-for-bit (same distances, same mappings, same
//! expansion order) while removing its three per-state costs:
//!
//! * **Counted-multiset heuristic** — the admissible label-multiset bound
//!   is evaluated from per-prefix label→count tables plus per-state
//!   scalars (`inter_v`, `inter_e`, remaining-edge counts) that are
//!   updated incrementally, so computing `h` after mapping one vertex is
//!   O(degree) instead of re-collecting and sorting the g-side label
//!   vectors (O(E log E)). Debug builds assert every `h` against a
//!   from-scratch recount.
//! * **Slab states** — search states live in a parent-pointer slab; no
//!   mapping `Vec` is cloned per expansion, and the full mapping is
//!   reconstructed only for the single accepted goal state.
//! * **Reusable workspace** — the heap, slab, and all scratch buffers are
//!   owned by a [`GedEngine`] and reused across calls; a [`PairProfile`]
//!   additionally lets possible-world verification rebuild only the
//!   world-dependent part (g vertex labels) per world.
//!
//! Label identity is tracked through small per-pair integer ids (`lid`s)
//! interned from the global [`Symbol`]s, so all multiset arithmetic runs
//! on dense count arrays.

use crate::astar::GedResult;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BinaryHeap, HashMap};
use uqsj_graph::{Edge, Graph, Symbol, SymbolTable, UncertainGraph, VertexId};

const EPS: u32 = u32::MAX;

/// Precomputed structure of one `(q, g)` pair: everything the search
/// needs that does not depend on the current possible world except the
/// g-side vertex labels, which can be patched per world via
/// [`PairProfile::set_g_vertex_lid`] + [`PairProfile::commit_world`].
///
/// Built once per pair by [`PairProfile::build_certain`] /
/// [`PairProfile::build_uncertain`]; for an uncertain `g` every
/// alternative label of every vertex is interned up front so world
/// patching never allocates.
#[derive(Default)]
pub struct PairProfile {
    // ---- per-pair label space ----
    lid_of: HashMap<Symbol, u32>,
    wild: Vec<bool>,
    // ---- q side (world-independent) ----
    n_q: usize,
    /// Processing order of q vertices (largest degree first, stable).
    order: Vec<u32>,
    /// Label id of `order[i]`.
    order_lid: Vec<u32>,
    /// Row `k`: label counts of the q vertices not yet processed
    /// (`order[k..]`), laid out as `(n_q + 1) × L`.
    qv_cnt: Vec<u32>,
    /// Row `k`: label counts of q edges with >= 1 unprocessed endpoint.
    qe_cnt: Vec<u32>,
    /// Non-wildcard / wildcard q vertex remainder sizes per prefix.
    qn: Vec<u32>,
    qw: Vec<u32>,
    /// Non-wildcard / wildcard q edge remainder sizes per prefix.
    qen: Vec<u32>,
    qew: Vec<u32>,
    /// `(lid, multiplicity)` of q edges leaving the remainder at each
    /// expansion step, indexed by `q_removal_start[k]..q_removal_start[k+1]`.
    q_edge_removals: Vec<(u32, u32)>,
    q_removal_start: Vec<u32>,
    /// `(max position in order, lid)` per q edge.
    q_edge_info: Vec<(u32, u32)>,
    /// Edge label ids per ordered q vertex pair.
    q_pairs: HashMap<(u32, u32), Vec<u32>>,
    // ---- g side, world-independent (structure is certain) ----
    n_g: usize,
    g_pairs: HashMap<(u32, u32), Vec<u32>>,
    /// Per g vertex: `(endpoint mask, lid)` of every incident edge.
    g_adj: Vec<Vec<(u128, u32)>>,
    /// Per lid: endpoint masks of the g edges carrying it.
    g_edges_by_label: Vec<Vec<u128>>,
    /// `(endpoint mask, lid)` per g edge.
    g_edge_info: Vec<(u128, u32)>,
    ge_total_n: u32,
    ge_total_w: u32,
    g_full_mask: u128,
    // ---- g side, world-dependent (rebuilt by `commit_world`) ----
    /// Current label id of each g vertex.
    g_vlid: Vec<u32>,
    /// Per lid: bitmask of g vertices currently carrying it.
    g_vmask: Vec<u128>,
    /// Per lid: number of g vertices currently carrying it.
    g_vtotal: Vec<u32>,
    /// Bitmask of g vertices whose current label is not a wildcard.
    g_nonwild_mask: u128,
}

impl PairProfile {
    /// An empty profile; build it with one of the `build_*` methods.
    pub fn new() -> Self {
        Self::default()
    }

    fn clear(&mut self) {
        self.lid_of.clear();
        self.wild.clear();
        self.order.clear();
        self.order_lid.clear();
        self.qv_cnt.clear();
        self.qe_cnt.clear();
        self.qn.clear();
        self.qw.clear();
        self.qen.clear();
        self.qew.clear();
        self.q_edge_removals.clear();
        self.q_removal_start.clear();
        self.q_edge_info.clear();
        self.q_pairs.clear();
        self.g_pairs.clear();
        self.g_adj.clear();
        self.g_edges_by_label.clear();
        self.g_edge_info.clear();
        self.ge_total_n = 0;
        self.ge_total_w = 0;
        self.g_full_mask = 0;
        self.g_vlid.clear();
        self.g_vmask.clear();
        self.g_vtotal.clear();
        self.g_nonwild_mask = 0;
    }

    fn intern(&mut self, table: &SymbolTable, s: Symbol) -> u32 {
        match self.lid_of.entry(s) {
            MapEntry::Occupied(e) => *e.get(),
            MapEntry::Vacant(e) => {
                let id = self.wild.len() as u32;
                self.wild.push(table.is_wildcard(s));
                e.insert(id);
                id
            }
        }
    }

    /// Build the profile for a pair of certain graphs.
    pub fn build_certain(&mut self, table: &SymbolTable, q: &Graph, g: &Graph) {
        self.build_impl(table, q, g.vertex_count(), g.edges(), |p, t| {
            for v in g.vertices() {
                let lid = p.intern(t, g.label(v));
                p.g_vlid.push(lid);
            }
        });
    }

    /// Build the profile for `q` against the *structure* of an uncertain
    /// graph. Every alternative label is interned so later world patches
    /// resolve via [`PairProfile::lid`] without allocation; the initial
    /// world selects alternative 0 of every vertex.
    pub fn build_uncertain(&mut self, table: &SymbolTable, q: &Graph, g: &UncertainGraph) {
        self.build_impl(table, q, g.vertex_count(), g.edges(), |p, t| {
            for v in g.vertices() {
                let first = p.intern(t, v.alternatives[0].label);
                for alt in &v.alternatives[1..] {
                    p.intern(t, alt.label);
                }
                p.g_vlid.push(first);
            }
        });
    }

    fn build_impl<F>(
        &mut self,
        table: &SymbolTable,
        q: &Graph,
        n_g: usize,
        g_edges: &[Edge],
        fill: F,
    ) where
        F: FnOnce(&mut Self, &SymbolTable),
    {
        self.clear();
        assert!(n_g <= 128, "A* GED supports up to 128 vertices");
        let n = q.vertex_count();
        self.n_q = n;
        self.n_g = n_g;
        self.g_full_mask = if n_g == 128 { u128::MAX } else { (1u128 << n_g) - 1 };

        // Fixed processing order: largest degree first. The sort must stay
        // stable — the reference search uses `sort_by_key`, and expansion
        // order (hence heap tie-breaking and the returned mapping) depends
        // on it.
        self.order.extend(0..n as u32);
        self.order.sort_by_key(|&v| Reverse(q.degree(VertexId(v))));
        let mut pos = vec![0usize; n];
        for (i, &v) in self.order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for i in 0..n {
            let v = self.order[i];
            let lid = self.intern(table, q.label(VertexId(v)));
            self.order_lid.push(lid);
        }
        for e in q.edges() {
            let lid = self.intern(table, e.label);
            let max_pos = pos[e.src.index()].max(pos[e.dst.index()]) as u32;
            self.q_edge_info.push((max_pos, lid));
            self.q_pairs.entry((e.src.0, e.dst.0)).or_default().push(lid);
        }
        self.g_adj.resize(n_g, Vec::new());
        for e in g_edges {
            let lid = self.intern(table, e.label);
            self.g_pairs.entry((e.src.0, e.dst.0)).or_default().push(lid);
            let emask = (1u128 << e.src.0) | (1u128 << e.dst.0);
            self.g_edge_info.push((emask, lid));
            self.g_adj[e.src.index()].push((emask, lid));
            if e.dst != e.src {
                self.g_adj[e.dst.index()].push((emask, lid));
            }
        }
        fill(self, table);
        debug_assert_eq!(self.g_vlid.len(), n_g);

        // Per-prefix q-side count tables over the final label space.
        let l = self.wild.len();
        self.qv_cnt.resize((n + 1) * l, 0);
        self.qe_cnt.resize((n + 1) * l, 0);
        for &lid in &self.order_lid {
            self.qv_cnt[lid as usize] += 1;
        }
        for &(_, lid) in &self.q_edge_info {
            self.qe_cnt[lid as usize] += 1;
        }
        let (mut qn, mut qw) = (0u32, 0u32);
        for &lid in &self.order_lid {
            if self.wild[lid as usize] {
                qw += 1;
            } else {
                qn += 1;
            }
        }
        let (mut qen, mut qew) = (0u32, 0u32);
        for &(_, lid) in &self.q_edge_info {
            if self.wild[lid as usize] {
                qew += 1;
            } else {
                qen += 1;
            }
        }
        self.qn.push(qn);
        self.qw.push(qw);
        self.qen.push(qen);
        self.qew.push(qew);
        self.q_removal_start.push(0);
        for k in 0..n {
            let src = k * l;
            let dst = (k + 1) * l;
            self.qv_cnt.copy_within(src..src + l, dst);
            let lu = self.order_lid[k] as usize;
            self.qv_cnt[dst + lu] -= 1;
            if self.wild[lu] {
                qw -= 1;
            } else {
                qn -= 1;
            }
            self.qn.push(qn);
            self.qw.push(qw);

            self.qe_cnt.copy_within(src..src + l, dst);
            let start = self.q_edge_removals.len();
            for i in 0..self.q_edge_info.len() {
                let (max_pos, lid) = self.q_edge_info[i];
                if max_pos as usize == k {
                    if let Some(slot) =
                        self.q_edge_removals[start..].iter_mut().find(|(id, _)| *id == lid)
                    {
                        slot.1 += 1;
                    } else {
                        self.q_edge_removals.push((lid, 1));
                    }
                }
            }
            for i in start..self.q_edge_removals.len() {
                let (lid, mult) = self.q_edge_removals[i];
                self.qe_cnt[dst + lid as usize] -= mult;
                if self.wild[lid as usize] {
                    qew -= mult;
                } else {
                    qen -= mult;
                }
            }
            self.qen.push(qen);
            self.qew.push(qew);
            self.q_removal_start.push(self.q_edge_removals.len() as u32);
        }

        // g-side per-label edge buckets (edge labels are certain, so these
        // are world-independent too).
        self.g_edges_by_label.resize(l, Vec::new());
        let (mut gen_t, mut gew_t) = (0u32, 0u32);
        for &(emask, lid) in &self.g_edge_info {
            self.g_edges_by_label[lid as usize].push(emask);
            if self.wild[lid as usize] {
                gew_t += 1;
            } else {
                gen_t += 1;
            }
        }
        self.ge_total_n = gen_t;
        self.ge_total_w = gew_t;
        self.g_vmask.resize(l, 0);
        self.g_vtotal.resize(l, 0);
        self.commit_world();
    }

    /// The per-pair label id of `s`, if it occurred in the pair (all
    /// alternative labels of an uncertain `g` are interned at build time).
    #[inline]
    pub fn lid(&self, s: Symbol) -> Option<u32> {
        self.lid_of.get(&s).copied()
    }

    /// Patch the label of g vertex `v` for the current world. Call
    /// [`PairProfile::commit_world`] after patching all changed vertices.
    #[inline]
    pub fn set_g_vertex_lid(&mut self, v: usize, lid: u32) {
        debug_assert!((lid as usize) < self.wild.len());
        self.g_vlid[v] = lid;
    }

    /// Rebuild the world-dependent vertex tables (per-label masks and
    /// counts) from the current `g` vertex labels. O(V + L).
    pub fn commit_world(&mut self) {
        for m in &mut self.g_vmask {
            *m = 0;
        }
        for t in &mut self.g_vtotal {
            *t = 0;
        }
        self.g_nonwild_mask = 0;
        for (v, &lid) in self.g_vlid.iter().enumerate() {
            self.g_vmask[lid as usize] |= 1u128 << v;
            self.g_vtotal[lid as usize] += 1;
            if !self.wild[lid as usize] {
                self.g_nonwild_mask |= 1u128 << v;
            }
        }
    }
}

/// One search state in the slab: the mapped prefix is recovered by
/// following `parent` pointers, so expansions copy 48 bytes instead of
/// cloning a mapping `Vec`.
#[derive(Clone, Copy)]
struct Node {
    parent: u32,
    /// Image of `order[k - 1]` (EPS = deleted); unused for the root.
    target: u32,
    /// Prefix length.
    k: u32,
    cost: u32,
    used: u128,
    /// Σ_l min(q remaining, g remaining) over non-wildcard vertex labels.
    inter_v: u32,
    /// Same for edge labels.
    inter_e: u32,
    /// Non-wildcard / wildcard g edges with >= 1 unused endpoint.
    gen_rem: u32,
    gew_rem: u32,
}

#[derive(PartialEq, Eq)]
struct HeapItem {
    f: u32,
    tie: u64,
    node: u32,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.f, self.tie).cmp(&(other.f, other.tie))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-call search effort, accumulated locally (plain integers) and
/// flushed to the `uqsj_ged_*` metrics once per [`GedEngine`] call — the
/// search loop itself never touches an atomic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// States popped from the open list and expanded.
    pub expanded: u64,
    /// Heuristic evaluations (one per child considered).
    pub heuristic_evals: u64,
    /// Children admitted to the open list (`f <= τ`).
    pub enqueued: u64,
    /// High-water mark of the open list.
    pub heap_peak: u64,
}

/// Heap, slab, and scratch buffers, allocated once and reused.
#[derive(Default)]
struct SearchSpace {
    nodes: Vec<Node>,
    heap: BinaryHeap<Reverse<HeapItem>>,
    /// Images of `order[0..k]` of the state being expanded.
    cur_map: Vec<u32>,
    /// Per-lid counter scratch for pairwise edge-label multiset costs.
    lam_cnt: Vec<u32>,
    lam_touch: Vec<u32>,
    /// `(lid, multiplicity)` of g edges leaving the remainder at one child.
    leave_buf: Vec<(u32, u32)>,
    /// Effort counters of the current/last call.
    stats: RunStats,
    /// Effort summed over every call on this engine (counters add,
    /// `heap_peak` max-merges) — the per-question EXPLAIN source.
    cumulative: RunStats,
}

/// Metric handles, registered once in the global registry.
struct EngineObs {
    calls: uqsj_obs::Counter,
    within_tau: uqsj_obs::Counter,
    expanded: uqsj_obs::Histogram,
    heuristic_evals: uqsj_obs::Histogram,
    heap_peak: uqsj_obs::Histogram,
}

fn engine_obs() -> &'static EngineObs {
    use std::sync::OnceLock;
    static OBS: OnceLock<EngineObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let r = uqsj_obs::global();
        EngineObs {
            calls: r.counter("uqsj_ged_calls_total", "tau-bounded A* searches started"),
            within_tau: r
                .counter("uqsj_ged_within_tau_total", "searches that found a mapping within tau"),
            expanded: r.histogram("uqsj_ged_states_expanded", "states expanded per A* call"),
            heuristic_evals: r
                .histogram("uqsj_ged_heuristic_evals", "heuristic evaluations per A* call"),
            heap_peak: r.histogram("uqsj_ged_heap_peak", "open-list high-water mark per A* call"),
        }
    })
}

/// A reusable GED search workspace.
///
/// One engine amortizes every allocation of τ-bounded A\* across an
/// arbitrary candidate stream; join drivers hold one per worker thread,
/// and the free functions [`crate::ged`] / [`crate::ged_bounded`] share a
/// thread-local instance. Results are bit-identical to the reference
/// search in [`crate::reference`].
///
/// ```
/// use uqsj_graph::{GraphBuilder, SymbolTable};
/// use uqsj_ged::engine::GedEngine;
/// let mut t = SymbolTable::new();
/// let mut b = GraphBuilder::new(&mut t);
/// b.vertex("x", "A");
/// let q = b.into_graph();
/// let mut b = GraphBuilder::new(&mut t);
/// b.vertex("x", "B");
/// let g = b.into_graph();
/// let mut engine = GedEngine::new();
/// assert_eq!(engine.ged(&t, &q, &g).distance, 1);
/// assert_eq!(engine.ged(&t, &q, &q).distance, 0); // workspace reused
/// ```
#[derive(Default)]
pub struct GedEngine {
    ws: SearchSpace,
    profile: PairProfile,
}

impl GedEngine {
    /// A fresh engine with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact GED; see [`crate::ged`].
    pub fn ged(&mut self, table: &SymbolTable, q: &Graph, g: &Graph) -> GedResult {
        self.ged_bounded(table, q, g, u32::MAX).expect("unbounded search always finds a mapping")
    }

    /// τ-bounded GED; see [`crate::ged_bounded`].
    pub fn ged_bounded(
        &mut self,
        table: &SymbolTable,
        q: &Graph,
        g: &Graph,
        tau: u32,
    ) -> Option<GedResult> {
        self.profile.build_certain(table, q, g);
        let Self { ws, profile } = self;
        run_astar(ws, profile, tau)
    }

    /// τ-bounded GED over an externally owned profile — the possible-world
    /// path: the caller patches the profile per world and re-runs.
    pub fn run_profile(&mut self, profile: &PairProfile, tau: u32) -> Option<GedResult> {
        run_astar(&mut self.ws, profile, tau)
    }

    /// Search-effort counters of the most recent call on this engine.
    pub fn last_run_stats(&self) -> RunStats {
        self.ws.stats
    }

    /// Search effort summed over every call since the engine was built
    /// (`heap_peak` is the high-water mark across calls). A caller that
    /// wants per-section effort — e.g. per verified pair — snapshots this
    /// before and after and subtracts.
    pub fn cumulative_stats(&self) -> RunStats {
        self.ws.cumulative
    }
}

thread_local! {
    static THREAD_ENGINE: RefCell<GedEngine> = RefCell::new(GedEngine::new());
}

/// Run `f` with this thread's shared [`GedEngine`] — the workspace behind
/// the free functions [`crate::ged`] / [`crate::ged_bounded`].
///
/// # Panics
/// Panics if called re-entrantly from inside `f`.
pub fn with_thread_engine<R>(f: impl FnOnce(&mut GedEngine) -> R) -> R {
    THREAD_ENGINE.with(|e| f(&mut e.borrow_mut()))
}

/// Instrumented entry point: counts locally in `ws.stats`, then flushes
/// one batch of atomics to the global registry — the search itself is
/// untouched, so the expansion order (and thus every result and oracle
/// comparison) is bit-identical to the uninstrumented engine.
fn run_astar(ws: &mut SearchSpace, p: &PairProfile, tau: u32) -> Option<GedResult> {
    ws.stats = RunStats::default();
    let result = run_astar_impl(ws, p, tau);
    let obs = engine_obs();
    obs.calls.inc();
    if result.is_some() {
        obs.within_tau.inc();
    }
    obs.expanded.observe(ws.stats.expanded);
    obs.heuristic_evals.observe(ws.stats.heuristic_evals);
    obs.heap_peak.observe(ws.stats.heap_peak);
    ws.cumulative.expanded += ws.stats.expanded;
    ws.cumulative.heuristic_evals += ws.stats.heuristic_evals;
    ws.cumulative.enqueued += ws.stats.enqueued;
    ws.cumulative.heap_peak = ws.cumulative.heap_peak.max(ws.stats.heap_peak);
    result
}

fn run_astar_impl(ws: &mut SearchSpace, p: &PairProfile, tau: u32) -> Option<GedResult> {
    let n = p.n_q;
    let l = p.wild.len();
    ws.nodes.clear();
    ws.heap.clear();
    if ws.lam_cnt.len() < l {
        ws.lam_cnt.resize(l, 0);
    }
    debug_assert!(ws.lam_cnt.iter().all(|&c| c == 0));

    let (mut iv0, mut ie0) = (0u32, 0u32);
    for lid in 0..l {
        if p.wild[lid] {
            continue;
        }
        iv0 += u32::min(p.qv_cnt[lid], p.g_vtotal[lid]);
        ie0 += u32::min(p.qe_cnt[lid], p.g_edges_by_label[lid].len() as u32);
    }
    let root = Node {
        parent: u32::MAX,
        target: EPS,
        k: 0,
        cost: 0,
        used: 0,
        inter_v: iv0,
        inter_e: ie0,
        gen_rem: p.ge_total_n,
        gew_rem: p.ge_total_w,
    };
    let h0 = heuristic_value(p, &root);
    #[cfg(debug_assertions)]
    debug_assert_eq!(h0, heuristic_oracle(p, 0, 0));
    if h0 > tau {
        return None;
    }
    ws.nodes.push(root);
    ws.heap.push(Reverse(HeapItem { f: h0, tie: 0, node: 0 }));
    ws.stats.heap_peak = 1;
    let mut tie = 0u64;

    while let Some(Reverse(HeapItem { f, node, .. })) = ws.heap.pop() {
        ws.stats.expanded += 1;
        if f > tau {
            return None; // best remaining estimate exceeds the bound
        }
        let cur = ws.nodes[node as usize];
        let k = cur.k as usize;
        if k == n {
            let total = cur.cost + completion_cost(p, &cur);
            // completion_cost was already folded into f for enqueued
            // complete states (see push_child), so total == f here.
            debug_assert_eq!(total, f);
            if total > tau {
                return None;
            }
            // Reconstruct the mapping of the single accepted goal state.
            let mut mapping = vec![None; n];
            let (mut idx, mut depth) = (node, k);
            while depth > 0 {
                let nd = ws.nodes[idx as usize];
                let u = p.order[depth - 1] as usize;
                mapping[u] = (nd.target != EPS).then_some(VertexId(nd.target));
                idx = nd.parent;
                depth -= 1;
            }
            return Some(GedResult { distance: total, mapping });
        }

        // Images of order[0..k], recovered once per expansion.
        ws.cur_map.clear();
        ws.cur_map.resize(k, 0);
        {
            let (mut idx, mut depth) = (node, k);
            while depth > 0 {
                let nd = &ws.nodes[idx as usize];
                ws.cur_map[depth - 1] = nd.target;
                idx = nd.parent;
                depth -= 1;
            }
        }

        // q-side removal of order[k], shared by every child: dropping one
        // q occurrence of label `l` changes Σ min(q_l, g_l) by 1 exactly
        // when q_l <= g_l (counts taken before the removal).
        let row_k = k * l;
        let mut iv_q = cur.inter_v;
        let lu = p.order_lid[k] as usize;
        if !p.wild[lu] {
            let qc = p.qv_cnt[row_k + lu];
            let gc = p.g_vtotal[lu] - (cur.used & p.g_vmask[lu]).count_ones();
            if qc <= gc {
                iv_q -= 1;
            }
        }
        let mut ie_q = cur.inter_e;
        let rs = p.q_removal_start[k] as usize;
        let re = p.q_removal_start[k + 1] as usize;
        for &(lid, mult) in &p.q_edge_removals[rs..re] {
            let lid = lid as usize;
            if p.wild[lid] {
                continue;
            }
            let qb = p.qe_cnt[row_k + lid];
            let gb = ge_remaining(p, lid, cur.used);
            ie_q -= u32::min(qb, gb) - u32::min(qb - mult, gb);
        }

        // Expand: map order[k] to each unused g vertex or to EPS — same
        // child order as the reference, so ties are assigned identically.
        for t in 0..p.n_g as u32 {
            if cur.used & (1u128 << t) == 0 {
                push_child(ws, p, tau, &mut tie, node, &cur, iv_q, ie_q, t);
            }
        }
        push_child(ws, p, tau, &mut tie, node, &cur, iv_q, ie_q, EPS);
    }
    None
}

#[allow(clippy::too_many_arguments)] // the expansion's full context
fn push_child(
    ws: &mut SearchSpace,
    p: &PairProfile,
    tau: u32,
    tie: &mut u64,
    parent: u32,
    cur: &Node,
    iv_q: u32,
    ie_q: u32,
    target: u32,
) {
    let k = cur.k as usize;
    let n = p.n_q;
    let l = p.wild.len();
    let row_k1 = (k + 1) * l;
    let delta = extend_cost(ws, p, cur, target);

    let child = if target == EPS {
        Node {
            parent,
            target,
            k: cur.k + 1,
            cost: cur.cost + delta,
            used: cur.used,
            inter_v: iv_q,
            inter_e: ie_q,
            gen_rem: cur.gen_rem,
            gew_rem: cur.gew_rem,
        }
    } else {
        let used2 = cur.used | (1u128 << target);
        // g-side vertex removal: dropping one g occurrence of `lt`
        // changes Σ min by 1 exactly when g_lt <= q_lt (q counts already
        // at prefix k + 1, g count before the removal).
        let mut iv = iv_q;
        let lt = p.g_vlid[target as usize] as usize;
        if !p.wild[lt] {
            let gc = p.g_vtotal[lt] - (cur.used & p.g_vmask[lt]).count_ones();
            let qc = p.qv_cnt[row_k1 + lt];
            if gc <= qc {
                iv -= 1;
            }
        }
        // Edges whose last unmapped endpoint is `target` leave the g
        // remainder now — an O(degree) scan of the adjacency list.
        ws.leave_buf.clear();
        let (mut gen2, mut gew2) = (cur.gen_rem, cur.gew_rem);
        let not_used2 = !used2;
        for &(emask, lid) in &p.g_adj[target as usize] {
            if emask & not_used2 == 0 {
                if p.wild[lid as usize] {
                    gew2 -= 1;
                } else {
                    gen2 -= 1;
                    if let Some(slot) = ws.leave_buf.iter_mut().find(|s| s.0 == lid) {
                        slot.1 += 1;
                    } else {
                        ws.leave_buf.push((lid, 1));
                    }
                }
            }
        }
        let mut ie = ie_q;
        for &(lid, mult) in &ws.leave_buf {
            let lid = lid as usize;
            let qc = p.qe_cnt[row_k1 + lid];
            let gb = ge_remaining(p, lid, cur.used);
            ie -= u32::min(qc, gb) - u32::min(qc, gb - mult);
        }
        Node {
            parent,
            target,
            k: cur.k + 1,
            cost: cur.cost + delta,
            used: used2,
            inter_v: iv,
            inter_e: ie,
            gen_rem: gen2,
            gew_rem: gew2,
        }
    };
    let h = if k + 1 == n { completion_cost(p, &child) } else { heuristic_value(p, &child) };
    #[cfg(debug_assertions)]
    {
        if k + 1 == n {
            debug_assert_eq!(h, completion_oracle(p, child.used));
        } else {
            debug_assert_eq!(h, heuristic_oracle(p, k + 1, child.used));
        }
    }
    let f = child.cost.saturating_add(h);
    ws.stats.heuristic_evals += 1;
    if f <= tau {
        *tie += 1;
        let idx = ws.nodes.len() as u32;
        ws.nodes.push(child);
        ws.heap.push(Reverse(HeapItem { f, tie: *tie, node: idx }));
        ws.stats.enqueued += 1;
        ws.stats.heap_peak = ws.stats.heap_peak.max(ws.heap.len() as u64);
    }
}

/// Incremental cost of extending the current state by mapping `order[k]`
/// to `target`: vertex substitution plus pairwise edge-multiset costs
/// against every previously mapped vertex.
fn extend_cost(ws: &mut SearchSpace, p: &PairProfile, cur: &Node, target: u32) -> u32 {
    let k = cur.k as usize;
    let u = p.order[k];
    let u_lid = p.order_lid[k] as usize;
    let mut cost = if target == EPS {
        1 // vertex deletion
    } else {
        let t_lid = p.g_vlid[target as usize] as usize;
        u32::from(!(u_lid == t_lid || p.wild[u_lid] || p.wild[t_lid]))
    };
    let SearchSpace { cur_map, lam_cnt, lam_touch, .. } = ws;
    for (i, &img) in cur_map.iter().enumerate() {
        let w = p.order[i];
        let q_fwd = p.q_pairs.get(&(w, u)).map_or(&[][..], Vec::as_slice);
        let q_bwd = p.q_pairs.get(&(u, w)).map_or(&[][..], Vec::as_slice);
        let (g_fwd, g_bwd): (&[u32], &[u32]) = if img == EPS || target == EPS {
            (&[], &[])
        } else {
            (
                p.g_pairs.get(&(img, target)).map_or(&[][..], Vec::as_slice),
                p.g_pairs.get(&(target, img)).map_or(&[][..], Vec::as_slice),
            )
        };
        cost += edge_cost_lids(lam_cnt, lam_touch, &p.wild, q_fwd, g_fwd);
        cost += edge_cost_lids(lam_cnt, lam_touch, &p.wild, q_bwd, g_bwd);
    }
    cost
}

/// `max(|A|, |B|) - λ(A, B)` over label-id slices, using a zeroed per-lid
/// counter (restored to zero on exit). Equals
/// [`crate::label_sets::edge_multiset_cost`] on the interned symbols.
fn edge_cost_lids(
    cnt: &mut [u32],
    touch: &mut Vec<u32>,
    wild: &[bool],
    a: &[u32],
    b: &[u32],
) -> u32 {
    if a.is_empty() && b.is_empty() {
        return 0;
    }
    let (mut an, mut aw) = (0u32, 0u32);
    for &x in a {
        if wild[x as usize] {
            aw += 1;
        } else {
            an += 1;
            if cnt[x as usize] == 0 {
                touch.push(x);
            }
            cnt[x as usize] += 1;
        }
    }
    let (mut bn, mut bw, mut inter) = (0u32, 0u32, 0u32);
    for &y in b {
        if wild[y as usize] {
            bw += 1;
        } else {
            bn += 1;
            if cnt[y as usize] > 0 {
                cnt[y as usize] -= 1;
                inter += 1;
            }
        }
    }
    for x in touch.drain(..) {
        cnt[x as usize] = 0;
    }
    (a.len().max(b.len()) as u32) - lambda_from_counts(an, aw, bn, bw, inter)
}

/// The closed-form wildcard matching of `label_sets::multiset_lambda`,
/// phrased over counts: leftover normals are saturated by opposing
/// wildcards first, then wildcards pair with each other.
#[inline]
fn lambda_from_counts(an: u32, aw: u32, bn: u32, bw: u32, inter: u32) -> u32 {
    let x = aw.min(bn - inter);
    let z = bw.min(an - inter);
    let y = (aw - x).min(bw - z);
    inter + x + z + y
}

/// `max(|A|, |B|) - λ` from remainder counts.
#[inline]
fn multiset_cost(an: u32, aw: u32, bn: u32, bw: u32, inter: u32) -> u32 {
    (an + aw).max(bn + bw) - lambda_from_counts(an, aw, bn, bw, inter)
}

/// The admissible label-multiset heuristic from per-state scalars — O(1)
/// given the incrementally maintained `inter_v` / `inter_e`.
fn heuristic_value(p: &PairProfile, nd: &Node) -> u32 {
    let k = nd.k as usize;
    let un = !nd.used & p.g_full_mask;
    let gn = (un & p.g_nonwild_mask).count_ones();
    let gw = un.count_ones() - gn;
    multiset_cost(p.qn[k], p.qw[k], gn, gw, nd.inter_v)
        + multiset_cost(p.qen[k], p.qew[k], nd.gen_rem, nd.gew_rem, nd.inter_e)
}

/// Cost of completing a full q mapping: insert remaining g vertices and
/// every g edge with at least one unmapped endpoint.
fn completion_cost(p: &PairProfile, nd: &Node) -> u32 {
    (!nd.used & p.g_full_mask).count_ones() + nd.gen_rem + nd.gew_rem
}

/// Remaining g edges with label `lid` (>= 1 endpoint outside `used`).
#[inline]
fn ge_remaining(p: &PairProfile, lid: usize, used: u128) -> u32 {
    let free = !used;
    p.g_edges_by_label[lid].iter().filter(|&&m| m & free != 0).count() as u32
}

/// From-scratch recount of the heuristic at `(k, used)` — the debug-build
/// oracle guarding the incremental deltas.
#[cfg(debug_assertions)]
fn heuristic_oracle(p: &PairProfile, k: usize, used: u128) -> u32 {
    let l = p.wild.len();
    let row = k * l;
    let (mut iv, mut ie) = (0u32, 0u32);
    for lid in 0..l {
        if p.wild[lid] {
            continue;
        }
        let gv = p.g_vtotal[lid] - (used & p.g_vmask[lid]).count_ones();
        iv += u32::min(p.qv_cnt[row + lid], gv);
        ie += u32::min(p.qe_cnt[row + lid], ge_remaining(p, lid, used));
    }
    let un = !used & p.g_full_mask;
    let gn = (un & p.g_nonwild_mask).count_ones();
    let gw = un.count_ones() - gn;
    let (mut gen_r, mut gew_r) = (0u32, 0u32);
    for &(emask, lid) in &p.g_edge_info {
        if emask & !used != 0 {
            if p.wild[lid as usize] {
                gew_r += 1;
            } else {
                gen_r += 1;
            }
        }
    }
    multiset_cost(p.qn[k], p.qw[k], gn, gw, iv)
        + multiset_cost(p.qen[k], p.qew[k], gen_r, gew_r, ie)
}

#[cfg(debug_assertions)]
fn completion_oracle(p: &PairProfile, used: u128) -> u32 {
    let mut c = (!used & p.g_full_mask).count_ones();
    for &(emask, _) in &p.g_edge_info {
        if emask & !used != 0 {
            c += 1;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{ged_bounded_reference, ged_reference};
    use uqsj_graph::GraphBuilder;

    fn pair(t: &mut SymbolTable) -> (Graph, Graph) {
        let mut b = GraphBuilder::new(t);
        b.vertex("x", "?x");
        b.vertex("a", "Actor");
        b.vertex("c", "Country");
        b.edge("x", "a", "type");
        b.edge("x", "c", "birthPlace");
        let q = b.into_graph();
        let mut b = GraphBuilder::new(t);
        b.vertex("x", "?y");
        b.vertex("a", "Politician");
        b.vertex("c", "Country");
        b.edge("x", "a", "type");
        b.edge("x", "c", "bornIn");
        let g = b.into_graph();
        (q, g)
    }

    #[test]
    fn engine_matches_reference_and_is_reusable() {
        let mut t = SymbolTable::new();
        let (q, g) = pair(&mut t);
        let mut engine = GedEngine::new();
        for _ in 0..3 {
            let a = engine.ged(&t, &q, &g);
            let b = ged_reference(&t, &q, &g);
            assert_eq!(a, b);
            for tau in 0..4 {
                assert_eq!(
                    engine.ged_bounded(&t, &q, &g, tau),
                    ged_bounded_reference(&t, &q, &g, tau)
                );
            }
        }
    }

    #[test]
    fn profile_world_patching_matches_rebuild() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.vertex("a", "Actor");
        b.edge("x", "a", "type");
        let q = b.into_graph();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?y");
        b.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Actor", 0.4)]);
        b.edge("x", "m", "type");
        let g = b.into_uncertain();

        let mut profile = PairProfile::new();
        profile.build_uncertain(&t, &q, &g);
        let mut engine = GedEngine::new();
        for world in g.possible_worlds() {
            for (v, &c) in world.choice.iter().enumerate() {
                let sym = g.vertices()[v].alternatives[c as usize].label;
                let lid = profile.lid(sym).expect("alternative interned at build");
                profile.set_g_vertex_lid(v, lid);
            }
            profile.commit_world();
            for tau in 0..3 {
                let patched = engine.run_profile(&profile, tau);
                let rebuilt = ged_bounded_reference(&t, &q, &world.graph, tau);
                assert_eq!(patched, rebuilt, "choice {:?} tau {tau}", world.choice);
            }
        }
    }

    #[test]
    fn empty_graphs_through_engine() {
        let t = SymbolTable::new();
        let q = Graph::new();
        let g = Graph::new();
        let mut engine = GedEngine::new();
        let r = engine.ged(&t, &q, &g);
        assert_eq!(r.distance, 0);
        assert!(r.mapping.is_empty());
    }

    #[test]
    fn run_stats_track_search_effort() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "A");
        b.vertex("y", "B");
        b.edge("x", "y", "e");
        let q = b.into_graph();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "A");
        b.vertex("y", "C");
        b.edge("x", "y", "e");
        let g = b.into_graph();
        let mut engine = GedEngine::new();
        assert_eq!(engine.ged(&t, &q, &g).distance, 1);
        let s = engine.last_run_stats();
        // Root plus at least the goal state were expanded; every enqueue
        // went through a heuristic evaluation first.
        assert!(s.expanded >= 2, "expanded = {}", s.expanded);
        assert!(s.heuristic_evals >= s.enqueued);
        assert!(s.enqueued >= 1);
        assert!(s.heap_peak >= 1);

        // An infeasible bound still reports the (empty) search.
        assert!(engine.ged_bounded(&t, &q, &g, 0).is_none());
        assert!(engine.last_run_stats().expanded <= 1);
    }
}
