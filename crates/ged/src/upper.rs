//! GED *upper* bounds: the exact cost of any concrete vertex mapping, and
//! the bipartite (assignment-based) approximation of Riesen & Bunke.
//!
//! During refinement (Algorithm 1, lines 8–15) a world whose *upper*
//! bound is within τ qualifies without running A\* at all — the sound
//! counterpart of the lower-bound reject filters. The assignment mapping
//! also supplies a usable vertex correspondence for template generation
//! when it happens to be optimal (it is recomputed exactly, so the
//! reported cost is always the true cost of that mapping).

use crate::astar::GedResult;
use crate::label_sets::{edge_multiset_cost, label_sub_cost, multiset_lambda};
use std::collections::HashMap;
use uqsj_graph::{Graph, Symbol, SymbolTable, VertexId};
use uqsj_matching::hungarian;

/// Exact edit cost induced by a specific (injective) vertex mapping from
/// `q` to `g`: vertex substitutions/deletions, insertions of unmapped `g`
/// vertices, and all edge costs under the mapping. For the *optimal*
/// mapping this equals `ged(q, g)`; for any mapping it is an upper bound.
///
/// # Panics
/// Panics if `mapping` has the wrong length or maps two vertices to the
/// same image.
pub fn mapping_cost(
    table: &SymbolTable,
    q: &Graph,
    g: &Graph,
    mapping: &[Option<VertexId>],
) -> u32 {
    assert_eq!(mapping.len(), q.vertex_count(), "mapping length mismatch");
    let mut used = vec![false; g.vertex_count()];
    let mut cost = 0u32;
    // Vertex costs.
    for (u, image) in mapping.iter().enumerate() {
        match image {
            Some(v) => {
                assert!(!used[v.index()], "mapping is not injective");
                used[v.index()] = true;
                cost += label_sub_cost(table, q.label(VertexId(u as u32)), g.label(*v));
            }
            None => cost += 1, // deletion
        }
    }
    // Unmapped g vertices are insertions.
    cost += used.iter().filter(|&&x| !x).count() as u32;

    // Edge costs: group both edge sets by mapped ordered pair.
    let mut q_pairs: HashMap<(u32, u32), Vec<Symbol>> = HashMap::new();
    for e in q.edges() {
        q_pairs.entry((e.src.0, e.dst.0)).or_default().push(e.label);
    }
    let mut g_pairs: HashMap<(u32, u32), Vec<Symbol>> = HashMap::new();
    for e in g.edges() {
        g_pairs.entry((e.src.0, e.dst.0)).or_default().push(e.label);
    }
    let mut g_handled: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for ((s, d), q_labels) in &q_pairs {
        let image = match (mapping[*s as usize], mapping[*d as usize]) {
            (Some(a), Some(b)) => Some((a.0, b.0)),
            _ => None,
        };
        let empty = Vec::new();
        let g_labels = image
            .and_then(|key| {
                g_handled.insert(key);
                g_pairs.get(&key)
            })
            .unwrap_or(&empty);
        cost += edge_multiset_cost(table, q_labels, g_labels);
    }
    // g edges on pairs never touched by a q edge: insertions.
    for (key, labels) in &g_pairs {
        if !g_handled.contains(key) {
            cost += labels.len() as u32;
        }
    }
    cost
}

/// Bipartite GED approximation: assign vertices by a Hungarian matching
/// over label + local-structure costs, then price that mapping exactly.
/// Always `>= ged(q, g)`.
pub fn ged_upper_bipartite(table: &SymbolTable, q: &Graph, g: &Graph) -> GedResult {
    let (nq, ng) = (q.vertex_count(), g.vertex_count());
    let n = nq.max(ng);
    if n == 0 {
        return GedResult { distance: 0, mapping: Vec::new() };
    }
    // Per-vertex incident edge label multisets (both directions), sorted.
    let star = |graph: &Graph, v: VertexId| -> Vec<Symbol> {
        let mut labels: Vec<Symbol> =
            graph.out_edges(v).chain(graph.in_edges(v)).map(|e| e.label).collect();
        labels.sort_unstable();
        labels
    };
    let q_stars: Vec<Vec<Symbol>> = q.vertices().map(|v| star(q, v)).collect();
    let g_stars: Vec<Vec<Symbol>> = g.vertices().map(|v| star(g, v)).collect();

    let mut cost = vec![vec![0u64; n]; n];
    for (i, row) in cost.iter_mut().enumerate() {
        for (j, c) in row.iter_mut().enumerate() {
            *c = match (i < nq, j < ng) {
                (true, true) => {
                    let vi = VertexId(i as u32);
                    let vj = VertexId(j as u32);
                    let sub = u64::from(label_sub_cost(table, q.label(vi), g.label(vj)));
                    let lam = multiset_lambda(table, &q_stars[i], &g_stars[j]);
                    let edge = (q_stars[i].len().max(g_stars[j].len()) - lam) as u64;
                    2 * sub + edge
                }
                (true, false) => 2 + q_stars[i].len() as u64, // delete
                (false, true) => 2 + g_stars[j].len() as u64, // insert
                (false, false) => 0,
            };
        }
    }
    let (_, assignment) = hungarian(&cost);
    let mapping: Vec<Option<VertexId>> = (0..nq)
        .map(|i| {
            let j = assignment[i];
            (j < ng).then_some(VertexId(j as u32))
        })
        .collect();
    let distance = mapping_cost(table, q, g, &mapping);
    GedResult { distance, mapping }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::ged;
    use uqsj_graph::GraphBuilder;

    #[test]
    fn identity_mapping_on_identical_graphs_costs_zero() {
        let mut t = SymbolTable::new();
        let mk = |t: &mut SymbolTable| {
            let mut b = GraphBuilder::new(t);
            b.vertex("a", "A");
            b.vertex("b", "B");
            b.edge("a", "b", "p");
            b.into_graph()
        };
        let q = mk(&mut t);
        let g = mk(&mut t);
        let identity: Vec<Option<VertexId>> = (0..2).map(|i| Some(VertexId(i))).collect();
        assert_eq!(mapping_cost(&t, &q, &g, &identity), 0);
    }

    #[test]
    fn all_deleted_mapping_costs_both_sizes() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("a", "A");
        b.vertex("b", "B");
        b.edge("a", "b", "p");
        let q = b.into_graph();
        let g = Graph::new();
        assert_eq!(mapping_cost(&t, &q, &g, &[None, None]), 3);
    }

    #[test]
    fn optimal_astar_mapping_prices_to_its_distance() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut t = SymbolTable::new();
        let labels = ["A", "B", "C"].map(|l| t.intern(l));
        let elabels = ["p", "q"].map(|l| t.intern(l));
        let mut rng = SmallRng::seed_from_u64(17);
        for _ in 0..100 {
            let mk = |rng: &mut SmallRng| {
                let n = rng.gen_range(1..5);
                let mut g = Graph::new();
                for _ in 0..n {
                    g.add_vertex(labels[rng.gen_range(0..3usize)]);
                }
                for s in 0..n {
                    for d in 0..n {
                        if s != d && rng.gen_bool(0.3) {
                            g.add_edge(
                                VertexId(s as u32),
                                VertexId(d as u32),
                                elabels[rng.gen_range(0..2usize)],
                            );
                        }
                    }
                }
                g
            };
            let q = mk(&mut rng);
            let g = mk(&mut rng);
            let r = ged(&t, &q, &g);
            // The optimal mapping must price to exactly the distance A*
            // reported — a strong consistency check on both algorithms.
            assert_eq!(mapping_cost(&t, &q, &g, &r.mapping), r.distance);
        }
    }

    #[test]
    fn bipartite_upper_bound_dominates_exact() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut t = SymbolTable::new();
        let labels = ["A", "B", "C", "?x"].map(|l| t.intern(l));
        let elabels = ["p", "q"].map(|l| t.intern(l));
        let mut rng = SmallRng::seed_from_u64(19);
        for _ in 0..100 {
            let mk = |rng: &mut SmallRng| {
                let n = rng.gen_range(1..5);
                let mut g = Graph::new();
                for _ in 0..n {
                    g.add_vertex(labels[rng.gen_range(0..4usize)]);
                }
                for s in 0..n {
                    for d in 0..n {
                        if s != d && rng.gen_bool(0.3) {
                            g.add_edge(
                                VertexId(s as u32),
                                VertexId(d as u32),
                                elabels[rng.gen_range(0..2usize)],
                            );
                        }
                    }
                }
                g
            };
            let q = mk(&mut rng);
            let g = mk(&mut rng);
            let ub = ged_upper_bipartite(&t, &q, &g);
            let exact = ged(&t, &q, &g).distance;
            assert!(ub.distance >= exact, "ub {} < exact {}", ub.distance, exact);
            // And the reported mapping really has the reported cost.
            assert_eq!(mapping_cost(&t, &q, &g, &ub.mapping), ub.distance);
        }
    }

    #[test]
    fn bipartite_is_exact_on_identical_graphs() {
        let mut t = SymbolTable::new();
        let mk = |t: &mut SymbolTable| {
            let mut b = GraphBuilder::new(t);
            b.vertex("x", "?x");
            b.vertex("a", "Actor");
            b.vertex("c", "City");
            b.edge("x", "a", "type");
            b.edge("x", "c", "birthPlace");
            b.into_graph()
        };
        let q = mk(&mut t);
        let g = mk(&mut t);
        assert_eq!(ged_upper_bipartite(&t, &q, &g).distance, 0);
    }
}
