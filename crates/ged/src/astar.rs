//! Exact graph edit distance by A\* search over vertex mappings.
//!
//! This is the verification algorithm of the filtering-and-refinement
//! framework (Sec. 3.3): the paper adopts "the A\* algorithm incorporating
//! some heuristics \[17\]" (Riesen, Fankhauser & Bunke, MLG'07). Vertices of
//! the first graph are processed in a fixed order (largest degree first);
//! each search state maps a prefix of them to distinct vertices of the
//! second graph or to ε (deletion); remaining vertices of the second graph
//! are inserted at the end. The admissible heuristic is the label-multiset
//! lower bound applied to the unmapped remainder.
//!
//! [`ged_bounded`] is the τ-bounded decision variant used in refinement:
//! it abandons any branch whose `f = g + h` exceeds the threshold and
//! reports `None` when no mapping within τ exists, which is dramatically
//! cheaper than the exact distance when the graphs are dissimilar.
//!
//! The search itself runs on the incremental engine in [`crate::engine`];
//! these free functions borrow a thread-local [`crate::engine::GedEngine`]
//! so repeated calls reuse its heap, state slab, and scratch buffers. The
//! original sort-and-merge implementation is retained in
//! [`crate::reference`] as a test oracle; the engine reproduces it
//! bit-for-bit.

use crate::engine::with_thread_engine;
use uqsj_graph::{Graph, SymbolTable, VertexId};

/// Result of a GED computation: the distance and the optimal vertex
/// mapping from the first graph (`q`) to the second (`g`). `None` entries
/// are deleted vertices; unmentioned `g` vertices are insertions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GedResult {
    /// The minimum graph edit distance.
    pub distance: u32,
    /// `mapping[u.index()]` = image of `q` vertex `u` in `g`, or `None`.
    pub mapping: Vec<Option<VertexId>>,
}

/// Exact minimum graph edit distance between two certain graphs.
///
/// Exponential in the worst case (GED is NP-hard); intended for the small
/// query-sized graphs of the paper's workloads. For filtering use the
/// bounds in [`crate::bounds`].
///
/// ```
/// use uqsj_graph::{GraphBuilder, SymbolTable};
/// let mut t = SymbolTable::new();
/// let mut b = GraphBuilder::new(&mut t);
/// b.vertex("x", "?x");
/// b.vertex("a", "Artist");
/// b.edge("x", "a", "type");
/// let q = b.into_graph();
/// let mut b = GraphBuilder::new(&mut t);
/// b.vertex("x", "?y");
/// b.vertex("a", "Politician");
/// b.edge("x", "a", "type");
/// let g = b.into_graph();
/// // One label substitution (variables are wildcards).
/// assert_eq!(uqsj_ged::ged(&t, &q, &g).distance, 1);
/// ```
pub fn ged(table: &SymbolTable, q: &Graph, g: &Graph) -> GedResult {
    with_thread_engine(|e| e.ged(table, q, g))
}

/// τ-bounded GED: returns the exact distance and mapping if
/// `ged(q, g) <= tau`, otherwise `None`.
pub fn ged_bounded(table: &SymbolTable, q: &Graph, g: &Graph, tau: u32) -> Option<GedResult> {
    with_thread_engine(|e| e.ged_bounded(table, q, g, tau))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_graph::GraphBuilder;

    fn table() -> SymbolTable {
        SymbolTable::new()
    }

    #[test]
    fn identical_graphs_have_zero_distance() {
        let mut t = table();
        let build = |t: &mut SymbolTable| {
            let mut b = GraphBuilder::new(t);
            b.vertex("x", "?x");
            b.vertex("a", "Actor");
            b.edge("x", "a", "type");
            b.into_graph()
        };
        let q = build(&mut t);
        let g = build(&mut t);
        let r = ged(&t, &q, &g);
        assert_eq!(r.distance, 0);
        assert_eq!(r.mapping, vec![Some(VertexId(0)), Some(VertexId(1))]);
    }

    #[test]
    fn single_label_substitution() {
        let mut t = table();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("x", "Artist");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("x", "Politician");
        let g = b2.into_graph();
        assert_eq!(ged(&t, &q, &g).distance, 1);
    }

    #[test]
    fn wildcard_substitution_is_free() {
        let mut t = table();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("x", "?x");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("x", "Politician");
        let g = b2.into_graph();
        assert_eq!(ged(&t, &q, &g).distance, 0);
    }

    #[test]
    fn vertex_insertion_and_edge_insertion() {
        let mut t = table();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("x", "A");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("x", "A");
        b2.vertex("y", "B");
        b2.edge("x", "y", "p");
        let g = b2.into_graph();
        // Insert vertex B (1) + insert edge (1).
        assert_eq!(ged(&t, &q, &g).distance, 2);
    }

    #[test]
    fn edge_label_substitution() {
        let mut t = table();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("x", "A");
        b1.vertex("y", "B");
        b1.edge("x", "y", "p");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("x", "A");
        b2.vertex("y", "B");
        b2.edge("x", "y", "r");
        let g = b2.into_graph();
        assert_eq!(ged(&t, &q, &g).distance, 1);
    }

    #[test]
    fn edge_direction_matters() {
        let mut t = table();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("x", "A");
        b1.vertex("y", "B");
        b1.edge("x", "y", "p");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("x", "A");
        b2.vertex("y", "B");
        b2.edge("y", "x", "p");
        let g = b2.into_graph();
        // Delete edge + insert reversed edge = 2 (identity vertex mapping),
        // or substitute both vertex labels = 2; either way distance 2.
        assert_eq!(ged(&t, &q, &g).distance, 2);
    }

    #[test]
    fn empty_graphs() {
        let t = table();
        let q = Graph::new();
        let g = Graph::new();
        assert_eq!(ged(&t, &q, &g).distance, 0);
    }

    #[test]
    fn empty_vs_nonempty() {
        let mut t = table();
        let q = Graph::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "A");
        b.vertex("y", "B");
        b.edge("x", "y", "p");
        let g = b.into_graph();
        assert_eq!(ged(&t, &q, &g).distance, 3);
        assert_eq!(ged(&t, &g, &q).distance, 3);
    }

    #[test]
    fn symmetry_on_small_graphs() {
        let mut t = table();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("x", "A");
        b1.vertex("y", "B");
        b1.vertex("z", "C");
        b1.edge("x", "y", "p");
        b1.edge("y", "z", "q");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("x", "A");
        b2.vertex("y", "D");
        b2.edge("x", "y", "p");
        let g = b2.into_graph();
        let d1 = ged(&t, &q, &g).distance;
        let d2 = ged(&t, &g, &q).distance;
        assert_eq!(d1, d2);
    }

    #[test]
    fn bounded_rejects_distant_pairs() {
        let mut t = table();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("x", "A");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("x", "B");
        b2.vertex("y", "C");
        b2.vertex("z", "D");
        b2.edge("x", "y", "p");
        b2.edge("y", "z", "q");
        let g = b2.into_graph();
        let exact = ged(&t, &q, &g).distance;
        assert!(exact > 2);
        assert!(ged_bounded(&t, &q, &g, 2).is_none());
        assert_eq!(ged_bounded(&t, &q, &g, exact).unwrap().distance, exact);
    }

    #[test]
    fn mapping_is_injective_and_consistent() {
        let mut t = table();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("a", "A");
        b1.vertex("b", "B");
        b1.vertex("c", "C");
        b1.edge("a", "b", "p");
        b1.edge("b", "c", "q");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("a", "A");
        b2.vertex("b", "B");
        b2.vertex("c", "C");
        b2.edge("a", "b", "p");
        b2.edge("b", "c", "q");
        let g = b2.into_graph();
        let r = ged(&t, &q, &g);
        assert_eq!(r.distance, 0);
        let mut seen = std::collections::HashSet::new();
        for m in r.mapping.iter().flatten() {
            assert!(seen.insert(*m), "mapping must be injective");
        }
    }

    #[test]
    fn paper_example3_distance_between_q2_and_world() {
        // Sanity check in the spirit of Example 3: a world differing from
        // the query only in a couple of labels has small GED.
        let mut t = table();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("x", "?x");
        b1.vertex("a", "Actor");
        b1.vertex("u", "USA");
        b1.edge("x", "a", "type");
        b1.edge("x", "u", "birthPlace");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("x", "?y");
        b2.vertex("a", "Politician");
        b2.vertex("u", "USA");
        b2.edge("x", "a", "type");
        b2.edge("x", "u", "birthPlace");
        let g = b2.into_graph();
        assert_eq!(ged(&t, &q, &g).distance, 1); // Actor -> Politician
    }
}
