//! Path q-gram count filter (Zhao et al., ICDE'12 — "paths in \[31\]").
//!
//! Every edge contributes one 1-path gram `(l(src), l(edge), l(dst))`.
//! A single edit operation destroys or alters at most `D` grams, where
//! `D = max(1, Δ)` and `Δ` is the maximum vertex degree across both graphs
//! (a vertex-label substitution touches every incident path). Hence if
//! `ged(q, g) = k`, the two gram multisets share at least
//! `max(|P_q|, |P_g|) − k·D` grams, giving the lower bound
//! `lb = ⌈(max(|P_q|, |P_g|) − common) / D⌉`.

use crate::bounds::LowerBound;
use uqsj_graph::{Graph, Symbol, SymbolTable};

/// The multiset of 1-path grams of a graph, sorted.
pub fn path_grams(g: &Graph) -> Vec<(Symbol, Symbol, Symbol)> {
    let mut grams: Vec<(Symbol, Symbol, Symbol)> =
        g.edges().iter().map(|e| (g.label(e.src), e.label, g.label(e.dst))).collect();
    grams.sort_unstable();
    grams
}

/// Number of common grams; wildcard-containing grams are matched
/// conservatively (they count as common with any remaining gram).
fn common_grams(
    table: &SymbolTable,
    a: &[(Symbol, Symbol, Symbol)],
    b: &[(Symbol, Symbol, Symbol)],
) -> usize {
    type Gram = (Symbol, Symbol, Symbol);
    let has_wild =
        |g: &Gram| table.is_wildcard(g.0) || table.is_wildcard(g.1) || table.is_wildcard(g.2);
    let (aw, an): (Vec<&Gram>, Vec<&Gram>) = a.iter().partition(|g| has_wild(g));
    let (bw, bn): (Vec<&Gram>, Vec<&Gram>) = b.iter().partition(|g| has_wild(g));
    // Exact intersection of fully-ground grams.
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0;
    while i < an.len() && j < bn.len() {
        match an[i].cmp(bn[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    // Wildcard grams conservatively match anything left over.
    let a_rest = an.len() - inter;
    let b_rest = bn.len() - inter;
    let x = aw.len().min(b_rest);
    let z = bw.len().min(a_rest);
    let y = (aw.len() - x).min(bw.len() - z);
    inter + x + z + y
}

/// The path-gram GED lower bound.
pub fn lb_ged_path(table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
    let pq = path_grams(q);
    let pg = path_grams(g);
    let common = common_grams(table, &pq, &pg);
    let deficit = pq.len().max(pg.len()) - common;
    let max_deg = q
        .vertices()
        .map(|v| q.degree(v))
        .chain(g.vertices().map(|v| g.degree(v)))
        .max()
        .unwrap_or(0);
    let d = max_deg.max(1);
    (deficit.div_ceil(d)) as u32
}

/// [`LowerBound`] adapter (structure-only for uncertain graphs).
#[derive(Clone, Copy, Debug, Default)]
pub struct PathBound;

impl LowerBound for PathBound {
    fn name(&self) -> &'static str {
        "Path"
    }

    fn stage_label(&self) -> &'static str {
        "path_gram"
    }

    fn certain(&self, table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
        lb_ged_path(table, q, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::ged;
    use uqsj_graph::{GraphBuilder, VertexId};

    #[test]
    fn identical_graphs_zero() {
        let mut t = SymbolTable::new();
        let mk = |t: &mut SymbolTable| {
            let mut b = GraphBuilder::new(t);
            b.vertex("a", "A");
            b.vertex("b", "B");
            b.edge("a", "b", "p");
            b.into_graph()
        };
        let q = mk(&mut t);
        let g = mk(&mut t);
        assert_eq!(lb_ged_path(&t, &q, &g), 0);
    }

    #[test]
    fn detects_label_difference() {
        let mut t = SymbolTable::new();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("a", "A");
        b1.vertex("b", "B");
        b1.edge("a", "b", "p");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("a", "A");
        b2.vertex("b", "C");
        b2.edge("a", "b", "p");
        let g = b2.into_graph();
        assert!(lb_ged_path(&t, &q, &g) >= 1);
    }

    #[test]
    fn path_is_admissible_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut t = SymbolTable::new();
        let labels = ["A", "B", "?x"].map(|l| t.intern(l));
        let elabels = ["p", "q"].map(|l| t.intern(l));
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..80 {
            let mk = |rng: &mut SmallRng| {
                let n = rng.gen_range(1..5);
                let mut g = Graph::new();
                for _ in 0..n {
                    g.add_vertex(labels[rng.gen_range(0..3usize)]);
                }
                for s in 0..n {
                    for d in 0..n {
                        if s != d && rng.gen_bool(0.3) {
                            g.add_edge(
                                VertexId(s as u32),
                                VertexId(d as u32),
                                elabels[rng.gen_range(0..2usize)],
                            );
                        }
                    }
                }
                g
            };
            let q = mk(&mut rng);
            let g = mk(&mut rng);
            let lb = lb_ged_path(&t, &q, &g);
            let exact = ged(&t, &q, &g).distance;
            assert!(lb <= exact, "path lb={lb} > exact={exact}");
        }
    }
}
