//! k-Adjacent-Tree (k-AT) count filter (Wang et al., TKDE'12 — "k-Adjacent
//! Tree in \[21\]" of the paper's related work).
//!
//! Each vertex is summarized by the canonical serialization of its
//! breadth-limited adjacency tree of depth `k`; similar graphs must share
//! most trees. A single edit operation perturbs only the trees of
//! vertices within distance `k` of the edited element — along an optimal
//! edit path vertex degrees are bounded by `2Δ`, so at most
//! `B = 2·(2Δ+1)^k` trees change per operation — giving the bound
//! `lb = ⌈unmatched / B⌉`.
//!
//! Trees containing a wildcard label are *jokers*: they conservatively
//! match any leftover tree on the other side (wildcards substitute for
//! free, so counting them as mismatches would be unsound).

use crate::bounds::LowerBound;
use uqsj_graph::{Graph, SymbolTable, VertexId};

/// Canonical serialization of the depth-`k` adjacency tree at `v`.
/// Returns the string and whether any wildcard label occurs in it.
pub fn kat_string(table: &SymbolTable, g: &Graph, v: VertexId, k: usize) -> (String, bool) {
    let mut wild = table.is_wildcard(g.label(v));
    let mut s = String::new();
    s.push_str(table.name(g.label(v)));
    if k == 0 {
        return (s, wild);
    }
    let mut children: Vec<String> = Vec::new();
    for e in g.out_edges(v) {
        let (sub, w) = kat_string(table, g, e.dst, k - 1);
        wild |= w || table.is_wildcard(e.label);
        children.push(format!(">{}:{}", table.name(e.label), sub));
    }
    for e in g.in_edges(v) {
        let (sub, w) = kat_string(table, g, e.src, k - 1);
        wild |= w || table.is_wildcard(e.label);
        children.push(format!("<{}:{}", table.name(e.label), sub));
    }
    children.sort_unstable();
    s.push('(');
    s.push_str(&children.join(","));
    s.push(')');
    (s, wild)
}

/// Number of `q` trees with no counterpart in `g` under the joker rule.
fn unmatched_trees(table: &SymbolTable, q: &Graph, g: &Graph, k: usize) -> usize {
    let collect = |graph: &Graph| -> (Vec<String>, usize) {
        let mut ground = Vec::new();
        let mut jokers = 0usize;
        for v in graph.vertices() {
            let (s, wild) = kat_string(table, graph, v, k);
            if wild {
                jokers += 1;
            } else {
                ground.push(s);
            }
        }
        ground.sort_unstable();
        (ground, jokers)
    };
    let (qg, qj) = collect(q);
    let (gg, gj) = collect(g);
    // Multiset intersection of ground trees.
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0;
    while i < qg.len() && j < gg.len() {
        match qg[i].cmp(&gg[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    // Leftover ground q-trees may still be absorbed by g's jokers; q's
    // own jokers always match.
    let q_rest = qg.len() - inter;
    let _ = qj; // q's jokers always match something and never count
    q_rest.saturating_sub(gj)
}

/// The k-AT GED lower bound.
pub fn lb_ged_kat(table: &SymbolTable, q: &Graph, g: &Graph, k: usize) -> u32 {
    let unmatched = unmatched_trees(table, q, g, k);
    let max_deg = q
        .vertices()
        .map(|v| q.degree(v))
        .chain(g.vertices().map(|v| g.degree(v)))
        .max()
        .unwrap_or(0);
    let budget = 2 * (2 * max_deg + 1).pow(k as u32).max(1);
    (unmatched.div_ceil(budget)) as u32
}

/// [`LowerBound`] adapter with depth 2 (structure-only for uncertain
/// graphs).
#[derive(Clone, Copy, Debug)]
pub struct KatBound {
    /// Tree depth `k`.
    pub depth: usize,
}

impl Default for KatBound {
    fn default() -> Self {
        Self { depth: 2 }
    }
}

impl LowerBound for KatBound {
    fn name(&self) -> &'static str {
        "kAT"
    }

    fn stage_label(&self) -> &'static str {
        "kat"
    }

    fn certain(&self, table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
        lb_ged_kat(table, q, g, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::ged;
    use uqsj_graph::GraphBuilder;

    #[test]
    fn identical_graphs_zero() {
        let mut t = SymbolTable::new();
        let mk = |t: &mut SymbolTable| {
            let mut b = GraphBuilder::new(t);
            b.vertex("a", "A");
            b.vertex("b", "B");
            b.vertex("c", "C");
            b.edge("a", "b", "p");
            b.edge("b", "c", "q");
            b.into_graph()
        };
        let q = mk(&mut t);
        let g = mk(&mut t);
        for k in [1usize, 2, 3] {
            assert_eq!(lb_ged_kat(&t, &q, &g, k), 0, "k={k}");
        }
    }

    #[test]
    fn serialization_is_order_independent() {
        let mut t = SymbolTable::new();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("a", "A");
        b1.vertex("b", "B");
        b1.vertex("c", "C");
        b1.edge("a", "b", "p");
        b1.edge("a", "c", "q");
        let g1 = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("a", "A");
        b2.vertex("c", "C");
        b2.vertex("b", "B");
        b2.edge("a", "c", "q");
        b2.edge("a", "b", "p");
        let g2 = b2.into_graph();
        let (s1, _) = kat_string(&t, &g1, VertexId(0), 2);
        let (s2, _) = kat_string(&t, &g2, VertexId(0), 2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn wildcards_make_jokers() {
        let mut t = SymbolTable::new();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("a", "?x");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("a", "Z");
        let g = b2.into_graph();
        // ged(q, g) = 0 (wildcard substitutes freely); the bound must not
        // exceed it.
        assert_eq!(ged(&t, &q, &g).distance, 0);
        assert_eq!(lb_ged_kat(&t, &q, &g, 2), 0);
    }

    #[test]
    fn kat_is_admissible_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut t = SymbolTable::new();
        let labels = ["A", "B", "?x"].map(|l| t.intern(l));
        let elabels = ["p", "q"].map(|l| t.intern(l));
        let mut rng = SmallRng::seed_from_u64(29);
        for _ in 0..80 {
            let mk = |rng: &mut SmallRng| {
                let n = rng.gen_range(1..5);
                let mut g = Graph::new();
                for _ in 0..n {
                    g.add_vertex(labels[rng.gen_range(0..3usize)]);
                }
                for s in 0..n {
                    for d in 0..n {
                        if s != d && rng.gen_bool(0.3) {
                            g.add_edge(
                                VertexId(s as u32),
                                VertexId(d as u32),
                                elabels[rng.gen_range(0..2usize)],
                            );
                        }
                    }
                }
                g
            };
            let q = mk(&mut rng);
            let g = mk(&mut rng);
            let exact = ged(&t, &q, &g).distance;
            for k in [1usize, 2] {
                let lb = lb_ged_kat(&t, &q, &g, k);
                assert!(lb <= exact, "kat(k={k}) lb={lb} > exact={exact}");
            }
        }
    }
}
