//! Partition-based lower bound (Zhao et al., PVLDB'13 — "Pars", \[30\] in
//! the paper).
//!
//! The query graph is decomposed into vertex-disjoint connected partitions
//! (each partition keeps the edges internal to it; cross-partition edges
//! belong to no partition). Any single edit operation can damage at most
//! one partition, so the number of partitions that are *not* structurally
//! contained (label-aware subgraph isomorphic) in the other graph is a
//! valid GED lower bound.

use crate::bounds::LowerBound;
use uqsj_graph::{Graph, SymbolTable, VertexId};

/// One partition: vertices (ids into the source graph) and internal edges
/// (indexes into the source graph's edge list).
#[derive(Clone, Debug)]
pub struct Partition {
    /// Member vertices.
    pub vertices: Vec<VertexId>,
    /// Indexes of internal edges.
    pub edges: Vec<usize>,
}

/// Decompose `g` into connected partitions of at most `max_size` vertices
/// by BFS chunking.
pub fn partition_graph(g: &Graph, max_size: usize) -> Vec<Partition> {
    assert!(max_size >= 1);
    let n = g.vertex_count();
    let mut assigned = vec![false; n];
    let mut part_of = vec![usize::MAX; n];
    let mut parts: Vec<Vec<VertexId>> = Vec::new();
    for start in 0..n {
        if assigned[start] {
            continue;
        }
        let mut current = Vec::with_capacity(max_size);
        let mut frontier = vec![start];
        assigned[start] = true;
        while let Some(v) = frontier.pop() {
            part_of[v] = parts.len();
            current.push(VertexId(v as u32));
            if current.len() == max_size {
                break;
            }
            let vid = VertexId(v as u32);
            for e in g.out_edges(vid).chain(g.in_edges(vid)) {
                for u in [e.src, e.dst] {
                    if !assigned[u.index()] {
                        assigned[u.index()] = true;
                        frontier.push(u.index());
                    }
                }
            }
        }
        // Vertices still in the frontier belong to a later partition.
        for v in frontier {
            assigned[v] = false;
        }
        parts.push(current);
    }
    parts
        .into_iter()
        .enumerate()
        .map(|(pi, vertices)| {
            let edges = g
                .edges()
                .iter()
                .enumerate()
                .filter(|(_, e)| part_of[e.src.index()] == pi && part_of[e.dst.index()] == pi)
                .map(|(i, _)| i)
                .collect();
            Partition { vertices, edges }
        })
        .collect()
}

/// Test whether a partition of `q` is label-aware subgraph-isomorphic to
/// `g` (backtracking; partitions are tiny by construction).
pub fn partition_contained(table: &SymbolTable, q: &Graph, part: &Partition, g: &Graph) -> bool {
    let k = part.vertices.len();
    let mut mapping: Vec<Option<VertexId>> = vec![None; k];
    let mut used = vec![false; g.vertex_count()];
    // Internal edges grouped by local endpoint indexes.
    let local: std::collections::HashMap<u32, usize> =
        part.vertices.iter().enumerate().map(|(i, v)| (v.0, i)).collect();
    let edges: Vec<(usize, usize, uqsj_graph::Symbol)> = part
        .edges
        .iter()
        .map(|&ei| {
            let e = &q.edges()[ei];
            (local[&e.src.0], local[&e.dst.0], e.label)
        })
        .collect();

    #[allow(clippy::too_many_arguments)] // recursive search state
    fn backtrack(
        table: &SymbolTable,
        i: usize,
        part: &Partition,
        q: &Graph,
        g: &Graph,
        edges: &[(usize, usize, uqsj_graph::Symbol)],
        mapping: &mut Vec<Option<VertexId>>,
        used: &mut Vec<bool>,
    ) -> bool {
        if i == part.vertices.len() {
            return true;
        }
        let ql = q.label(part.vertices[i]);
        for cand in g.vertices() {
            if used[cand.index()] || !uqsj_graph::labels_match(table, ql, g.label(cand)) {
                continue;
            }
            // Check edges touching i whose other endpoint is mapped.
            let ok = edges.iter().all(|&(s, d, l)| {
                let (ms, md) = (
                    if s == i { Some(cand) } else { mapping[s] },
                    if d == i { Some(cand) } else { mapping[d] },
                );
                match (ms, md) {
                    (Some(a), Some(b)) if s == i || d == i => g
                        .edge_labels_between(a, b)
                        .iter()
                        .any(|&el| uqsj_graph::labels_match(table, l, el)),
                    _ => true,
                }
            });
            if !ok {
                continue;
            }
            mapping[i] = Some(cand);
            used[cand.index()] = true;
            if backtrack(table, i + 1, part, q, g, edges, mapping, used) {
                return true;
            }
            mapping[i] = None;
            used[cand.index()] = false;
        }
        false
    }

    backtrack(table, 0, part, q, g, &edges, &mut mapping, &mut used)
}

/// The partition-based lower bound: the number of partitions of `q` (of
/// size at most `max_size`) not contained in `g`.
pub fn lb_ged_partition(table: &SymbolTable, q: &Graph, g: &Graph, max_size: usize) -> u32 {
    partition_graph(q, max_size).iter().filter(|p| !partition_contained(table, q, p, g)).count()
        as u32
}

/// [`LowerBound`] adapter with partition size 2 (structure-only for
/// uncertain graphs).
#[derive(Clone, Copy, Debug)]
pub struct ParsBound {
    /// Maximum partition size.
    pub max_size: usize,
}

impl Default for ParsBound {
    fn default() -> Self {
        Self { max_size: 2 }
    }
}

impl LowerBound for ParsBound {
    fn name(&self) -> &'static str {
        "Pars"
    }

    fn stage_label(&self) -> &'static str {
        "partition"
    }

    fn certain(&self, table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
        lb_ged_partition(table, q, g, self.max_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::ged;
    use uqsj_graph::GraphBuilder;

    #[test]
    fn partitions_cover_all_vertices_disjointly() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        for i in 0..7 {
            b.vertex(&format!("v{i}"), "A");
        }
        for i in 0..6 {
            b.edge(&format!("v{i}"), &format!("v{}", i + 1), "p");
        }
        let g = b.into_graph();
        let parts = partition_graph(&g, 3);
        let mut seen = [false; 7];
        for p in &parts {
            assert!(p.vertices.len() <= 3);
            for v in &p.vertices {
                assert!(!seen[v.index()], "vertex in two partitions");
                seen[v.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn containment_finds_identity() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("a", "A");
        b.vertex("b", "B");
        b.edge("a", "b", "p");
        let g = b.into_graph();
        let parts = partition_graph(&g, 2);
        for p in &parts {
            assert!(partition_contained(&t, &g, p, &g));
        }
        assert_eq!(lb_ged_partition(&t, &g, &g, 2), 0);
    }

    #[test]
    fn pars_is_admissible_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut t = SymbolTable::new();
        let labels = ["A", "B", "C"].map(|l| t.intern(l));
        let elabels = ["p", "q"].map(|l| t.intern(l));
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..60 {
            let mk = |rng: &mut SmallRng| {
                let n = rng.gen_range(1..5);
                let mut g = Graph::new();
                for _ in 0..n {
                    g.add_vertex(labels[rng.gen_range(0..3usize)]);
                }
                for s in 0..n {
                    for d in 0..n {
                        if s != d && rng.gen_bool(0.3) {
                            g.add_edge(
                                VertexId(s as u32),
                                VertexId(d as u32),
                                elabels[rng.gen_range(0..2usize)],
                            );
                        }
                    }
                }
                g
            };
            let q = mk(&mut rng);
            let g = mk(&mut rng);
            for size in [1, 2, 3] {
                let lb = lb_ged_partition(&t, &q, &g, size);
                let exact = ged(&t, &q, &g).distance;
                assert!(lb <= exact, "pars lb={lb} > exact={exact} (size {size})");
            }
        }
    }
}
