//! Label-multiset global filter (Zhao et al., ICDE'12 — \[31\] in the
//! paper), written `lb_gedLM` in Theorem 2:
//!
//! ```text
//! lb_gedLM(q, g) = max(|V(q)|, |V(g)|) - λ_V + max(|E(q)|, |E(g)|) - λ_E
//! ```
//!
//! The paper proves its CSS bound dominates this one (Theorem 2); the
//! workspace's property tests exercise that dominance.

use crate::bounds::LowerBound;
use crate::label_sets::{lambda_e_certain, lambda_v_certain};
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};

/// `lb_gedLM(q, g)` for certain graphs.
pub fn lb_ged_label_multiset(table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
    let lv = lambda_v_certain(table, q, g);
    let le = lambda_e_certain(table, q, g);
    let v = q.vertex_count().max(g.vertex_count()) - lv;
    let e = q.edge_count().max(g.edge_count()) - le;
    (v + e) as u32
}

/// [`LowerBound`] adapter.
#[derive(Clone, Copy, Debug, Default)]
pub struct LabelMultisetBound;

impl LowerBound for LabelMultisetBound {
    fn name(&self) -> &'static str {
        "LM"
    }

    fn stage_label(&self) -> &'static str {
        "label_multiset"
    }

    fn certain(&self, table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
        lb_ged_label_multiset(table, q, g)
    }

    fn uncertain(&self, table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> u32 {
        // A sound uncertain lift exists for LM: λ_V over the Def. 10
        // bipartite graph upper-bounds λ_V of every world, and edge labels
        // are certain. (We grant the baseline this strengthening so the
        // Theorem 2 comparison stays apples-to-apples.)
        let lv = crate::label_sets::lambda_v_uncertain(table, q, g);
        let le = crate::label_sets::lambda_e_uncertain(table, q, g);
        let v = q.vertex_count().max(g.vertex_count()) - lv;
        let e = q.edge_count().max(g.edge_count()) - le;
        (v + e) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::ged;
    use crate::bounds::css::lb_ged_css_certain;
    use uqsj_graph::GraphBuilder;

    fn star(t: &mut SymbolTable, center: &str, leaves: &[&str], edge: &str) -> Graph {
        let mut b = GraphBuilder::new(t);
        b.vertex("c", center);
        for (i, l) in leaves.iter().enumerate() {
            b.vertex(&format!("l{i}"), l);
            b.edge("c", &format!("l{i}"), edge);
        }
        b.into_graph()
    }

    #[test]
    fn lm_bound_is_admissible() {
        let mut t = SymbolTable::new();
        let q = star(&mut t, "A", &["B", "C"], "p");
        let g = star(&mut t, "A", &["B", "D", "E"], "p");
        let lb = lb_ged_label_multiset(&t, &q, &g);
        assert!(lb <= ged(&t, &q, &g).distance);
    }

    #[test]
    fn theorem2_css_dominates_lm_on_examples() {
        let mut t = SymbolTable::new();
        let cases = [
            (star(&mut t, "A", &["B", "C"], "p"), star(&mut t, "A", &["B"], "p")),
            (star(&mut t, "A", &["B"], "p"), star(&mut t, "X", &["Y", "Z", "W"], "q")),
        ];
        for (q, g) in &cases {
            assert!(
                lb_ged_css_certain(&t, q, g) >= lb_ged_label_multiset(&t, q, g),
                "CSS must dominate LM (Theorem 2)"
            );
        }
    }
}
