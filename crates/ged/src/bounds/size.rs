//! Vertex/edge-count global filter (Zeng et al., VLDB'09 — \[29\] in the
//! paper): editing cannot change counts faster than one per operation.

use crate::bounds::LowerBound;
use uqsj_graph::{Graph, SymbolTable, UncertainGraph};

/// `| |V(q)| - |V(g)| | + | |E(q)| - |E(g)| |`.
pub fn lb_ged_size(q: &Graph, g: &Graph) -> u32 {
    let dv = (q.vertex_count() as i64 - g.vertex_count() as i64).unsigned_abs() as u32;
    let de = (q.edge_count() as i64 - g.edge_count() as i64).unsigned_abs() as u32;
    dv + de
}

/// [`LowerBound`] adapter. The structure of an uncertain graph is certain,
/// so this bound needs no structure-only lift.
#[derive(Clone, Copy, Debug, Default)]
pub struct SizeBound;

impl LowerBound for SizeBound {
    fn name(&self) -> &'static str {
        "Size"
    }

    fn stage_label(&self) -> &'static str {
        "size"
    }

    fn certain(&self, _table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
        lb_ged_size(q, g)
    }

    fn uncertain(&self, _table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> u32 {
        let dv = (q.vertex_count() as i64 - g.vertex_count() as i64).unsigned_abs() as u32;
        let de = (q.edge_count() as i64 - g.edge_count() as i64).unsigned_abs() as u32;
        dv + de
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::ged;
    use uqsj_graph::GraphBuilder;

    #[test]
    fn size_bound_examples() {
        let mut t = SymbolTable::new();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("a", "A");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("a", "A");
        b2.vertex("b", "B");
        b2.edge("a", "b", "p");
        let g = b2.into_graph();
        assert_eq!(lb_ged_size(&q, &g), 2);
        assert!(lb_ged_size(&q, &g) <= ged(&t, &q, &g).distance);
    }
}
