//! SEGOS-style cascaded star filter (Wang et al., ICDE'12 — \[22\] in the
//! paper).
//!
//! SEGOS organizes star structures in a two-level inverted index and
//! cascades a cheap count-based filter before the exact star-mapping
//! (Hungarian) distance. Operating per pair (as the join here does), the
//! cascade becomes: (1) a coarse *unmatched-star count* filter — stars of
//! `q` with no compatible star anywhere in `g` must be edited; (2) if the
//! coarse bound cannot decide, the exact c-star assignment bound. The
//! returned bound is the maximum of the two stages.

use crate::bounds::cstar::{lb_ged_cstar, star_distance, stars};
use crate::bounds::LowerBound;
use uqsj_graph::{Graph, SymbolTable};

/// Stage 1: stars of `q` with no zero-distance counterpart in `g`, scaled
/// by the per-operation star budget. Every unmatched star of `q` must have
/// been touched by some edit operation, and one operation touches at most
/// `2Δ+1` stars of `q` (a vertex relabel reaches its neighbors, whose
/// degree along an optimal edit path is bounded by the sum of their `q`
/// and `g` degrees), so `⌈unmatched / max(4, 2Δ+1)⌉` is a valid bound.
pub fn lb_ged_star_count(table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
    let sq = stars(q);
    let sg = stars(g);
    let unmatched =
        sq.iter().filter(|a| !sg.iter().any(|b| star_distance(table, a, b) == 0)).count();
    let max_deg = q
        .vertices()
        .map(|v| q.degree(v))
        .chain(g.vertices().map(|v| g.degree(v)))
        .max()
        .unwrap_or(0);
    let denom = 4usize.max(2 * max_deg + 1);
    unmatched.div_ceil(denom) as u32
}

/// The cascaded SEGOS-style bound.
pub fn lb_ged_segos(table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
    let coarse = lb_ged_star_count(table, q, g);
    let fine = lb_ged_cstar(table, q, g);
    coarse.max(fine)
}

/// [`LowerBound`] adapter (structure-only for uncertain graphs).
#[derive(Clone, Copy, Debug, Default)]
pub struct SegosBound;

impl LowerBound for SegosBound {
    fn name(&self) -> &'static str {
        "SEGOS"
    }

    fn stage_label(&self) -> &'static str {
        "segos"
    }

    fn certain(&self, table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
        lb_ged_segos(table, q, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::ged;
    use uqsj_graph::{GraphBuilder, VertexId};

    #[test]
    fn identical_graphs_zero() {
        let mut t = SymbolTable::new();
        let mk = |t: &mut SymbolTable| {
            let mut b = GraphBuilder::new(t);
            b.vertex("a", "A");
            b.vertex("b", "B");
            b.edge("a", "b", "p");
            b.into_graph()
        };
        let q = mk(&mut t);
        let g = mk(&mut t);
        assert_eq!(lb_ged_segos(&t, &q, &g), 0);
    }

    #[test]
    fn segos_dominates_cstar_stage() {
        let mut t = SymbolTable::new();
        let mut b1 = GraphBuilder::new(&mut t);
        b1.vertex("a", "A");
        b1.vertex("b", "B");
        b1.edge("a", "b", "p");
        let q = b1.into_graph();
        let mut b2 = GraphBuilder::new(&mut t);
        b2.vertex("a", "X");
        b2.vertex("b", "Y");
        b2.edge("a", "b", "r");
        let g = b2.into_graph();
        assert!(lb_ged_segos(&t, &q, &g) >= lb_ged_cstar(&t, &q, &g));
    }

    #[test]
    fn segos_is_admissible_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut t = SymbolTable::new();
        let labels = ["A", "B", "C"].map(|l| t.intern(l));
        let elabels = ["p", "q"].map(|l| t.intern(l));
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..60 {
            let mk = |rng: &mut SmallRng| {
                let n = rng.gen_range(1..5);
                let mut g = uqsj_graph::Graph::new();
                for _ in 0..n {
                    g.add_vertex(labels[rng.gen_range(0..3usize)]);
                }
                for s in 0..n {
                    for d in 0..n {
                        if s != d && rng.gen_bool(0.3) {
                            g.add_edge(
                                VertexId(s as u32),
                                VertexId(d as u32),
                                elabels[rng.gen_range(0..2usize)],
                            );
                        }
                    }
                }
                g
            };
            let q = mk(&mut rng);
            let g = mk(&mut rng);
            let lb = lb_ged_segos(&t, &q, &g);
            let exact = ged(&t, &q, &g).distance;
            assert!(lb <= exact, "segos lb={lb} > exact={exact}");
        }
    }
}
