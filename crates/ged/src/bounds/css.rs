//! The CSS (common structural subgraph) based GED lower bound — the
//! paper's central technical contribution (Sec. 4).
//!
//! For certain graphs (Theorem 1), assuming `|V(q)| <= |V(g)|`:
//!
//! ```text
//! ged(q, g) >= |V(g)| + |E(g)| - λ_E(q, g) + dif(q, g)/2 - λ_V(q, g)
//! ```
//!
//! where `dif` is the *degree distance* of Def. 9 — the component-wise
//! truncated difference (`⊖`, Def. 8) between the sorted degree sequences.
//!
//! For a certain `q` and an **uncertain** `g` (Theorem 3), the same formula
//! applies with `λ_V(q, g)` replaced by the maximum matching in the
//! vertex-label bipartite graph of Def. 10 — a *uniform* bound over every
//! possible world of `g`, the property that lets SimJ prune whole
//! uncertain graphs without enumeration.

use crate::bounds::LowerBound;
use crate::label_sets::{
    lambda_e_certain, lambda_e_uncertain, lambda_v_certain, lambda_v_label_sets, lambda_v_uncertain,
};
use uqsj_graph::{Graph, Symbol, SymbolTable, UncertainGraph};

/// The truncated difference `a ⊖ b` of Def. 8.
#[inline]
pub fn tminus(a: u32, b: u32) -> u32 {
    a.saturating_sub(b)
}

/// Degree distance `dif(q, g)` (Def. 9) between two sorted-non-increasing
/// degree sequences, where `small` has `m <= n = |large|` entries.
///
/// # Panics
/// Panics (debug) if `small` is longer than `large`.
pub fn degree_distance(small: &[u32], large: &[u32]) -> u32 {
    debug_assert!(small.len() <= large.len());
    small.iter().zip(large.iter()).map(|(&a, &b)| tminus(a, b)).sum()
}

/// The structural terms of the CSS bound that do not depend on `λ_V`:
/// `C(q, g) = |V| + |E| - λ_E + ⌈dif/2⌉`, following Theorem 4's constant.
///
/// Splitting the bound this way lets the probabilistic filter (Theorem 4)
/// and the possible-world-group machinery reuse the expensive part while
/// recomputing only `λ_V` per group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CssTerms {
    /// `max(|V(q)|, |V(g)|)`.
    pub v: u32,
    /// Edge count of the graph with more vertices.
    pub e: u32,
    /// `λ_E(q, g)`.
    pub lambda_e: u32,
    /// Degree distance `dif(q, g)`.
    pub dif: u32,
}

impl CssTerms {
    /// `C(q, g) = |V| + |E| - λ_E + ⌈dif/2⌉` (integer, rounded up — valid
    /// because GED is integral).
    pub fn c_value(&self) -> i64 {
        i64::from(self.v) + i64::from(self.e) - i64::from(self.lambda_e)
            + i64::from(self.dif.div_ceil(2))
    }

    /// The CSS lower bound given a value (or upper bound) for `λ_V`.
    pub fn bound_with_lambda_v(&self, lambda_v: u32) -> u32 {
        (self.c_value() - i64::from(lambda_v)).max(0) as u32
    }
}

/// Compute [`CssTerms`] for one orientation: `small` has at most as many
/// vertices as `large`.
fn terms_oriented(
    small_degrees: &[u32],
    large_degrees: &[u32],
    large_v: u32,
    large_e: u32,
    lambda_e: u32,
) -> CssTerms {
    CssTerms {
        v: large_v,
        e: large_e,
        lambda_e,
        dif: degree_distance(small_degrees, large_degrees),
    }
}

/// CSS-based lower bound for two certain graphs (Theorem 1). When the two
/// graphs have the same number of vertices both orientations are valid and
/// the larger bound is returned.
pub fn lb_ged_css_certain(table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
    let lambda_v = lambda_v_certain(table, q, g) as u32;
    let lambda_e = lambda_e_certain(table, q, g) as u32;
    let dq = q.sorted_degrees();
    let dg = g.sorted_degrees();
    let mut best = 0u32;
    if q.vertex_count() <= g.vertex_count() {
        let t = terms_oriented(&dq, &dg, g.vertex_count() as u32, g.edge_count() as u32, lambda_e);
        best = best.max(t.bound_with_lambda_v(lambda_v));
    }
    if g.vertex_count() <= q.vertex_count() {
        let t = terms_oriented(&dg, &dq, q.vertex_count() as u32, q.edge_count() as u32, lambda_e);
        best = best.max(t.bound_with_lambda_v(lambda_v));
    }
    best
}

/// The [`CssTerms`] for a certain/uncertain pair (Theorem 3), choosing the
/// orientation with the larger vertex count as prescribed. On a vertex
/// count tie the orientation maximizing `C` is returned.
pub fn css_terms_uncertain(table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> CssTerms {
    let lambda_e = lambda_e_uncertain(table, q, g) as u32;
    let dq = q.sorted_degrees();
    let dg = g.sorted_degrees();
    let fwd = (q.vertex_count() <= g.vertex_count()).then(|| {
        terms_oriented(&dq, &dg, g.vertex_count() as u32, g.edge_count() as u32, lambda_e)
    });
    let bwd = (g.vertex_count() <= q.vertex_count()).then(|| {
        terms_oriented(&dg, &dq, q.vertex_count() as u32, q.edge_count() as u32, lambda_e)
    });
    match (fwd, bwd) {
        (Some(a), Some(b)) => {
            if a.c_value() >= b.c_value() {
                a
            } else {
                b
            }
        }
        (Some(a), None) => a,
        (None, Some(b)) => b,
        (None, None) => unreachable!("one orientation always applies"),
    }
}

/// CSS-based lower bound on `ged(q, pw(g))` uniform over all possible
/// worlds of `g` (Theorem 3).
pub fn lb_ged_css_uncertain(table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> u32 {
    let terms = css_terms_uncertain(table, q, g);
    let lambda_v = lambda_v_uncertain(table, q, g) as u32;
    terms.bound_with_lambda_v(lambda_v)
}

/// CSS-based lower bound over a *restricted* uncertain graph: vertex `i`
/// may only take the labels in `label_sets[i]`. Used per possible-world
/// group in the cost-based optimization (Algorithm 2).
pub fn lb_ged_css_restricted(
    table: &SymbolTable,
    q: &Graph,
    g: &UncertainGraph,
    label_sets: &[Vec<Symbol>],
) -> u32 {
    let terms = css_terms_uncertain(table, q, g);
    let lambda_v = lambda_v_label_sets(table, q, label_sets) as u32;
    terms.bound_with_lambda_v(lambda_v)
}

/// [`LowerBound`] adapter for the CSS bound.
#[derive(Clone, Copy, Debug, Default)]
pub struct CssBound;

impl LowerBound for CssBound {
    fn name(&self) -> &'static str {
        "CSS"
    }

    fn stage_label(&self) -> &'static str {
        "css"
    }

    fn certain(&self, table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
        lb_ged_css_certain(table, q, g)
    }

    // Unlike the baselines, CSS handles uncertainty natively (Theorem 3).
    fn uncertain(&self, table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> u32 {
        lb_ged_css_uncertain(table, q, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::ged;
    use uqsj_graph::GraphBuilder;

    #[test]
    fn tminus_definition() {
        assert_eq!(tminus(5, 3), 2);
        assert_eq!(tminus(3, 5), 0);
        assert_eq!(tminus(4, 4), 0);
    }

    #[test]
    fn degree_distance_examples() {
        assert_eq!(degree_distance(&[3, 2, 1], &[3, 2, 1]), 0);
        assert_eq!(degree_distance(&[4, 3], &[2, 2, 2]), 3);
        assert_eq!(degree_distance(&[1], &[5, 5]), 0);
        assert_eq!(degree_distance(&[], &[1, 2]), 0);
    }

    fn chain(t: &mut SymbolTable, labels: &[&str], edge: &str) -> Graph {
        let mut b = GraphBuilder::new(t);
        for (i, l) in labels.iter().enumerate() {
            b.vertex(&format!("v{i}"), l);
        }
        for i in 0..labels.len().saturating_sub(1) {
            b.edge(&format!("v{i}"), &format!("v{}", i + 1), edge);
        }
        b.into_graph()
    }

    #[test]
    fn css_bound_is_admissible_on_examples() {
        let mut t = SymbolTable::new();
        let q = chain(&mut t, &["A", "B", "C"], "p");
        let g = chain(&mut t, &["A", "B", "D", "E"], "p");
        let lb = lb_ged_css_certain(&t, &q, &g);
        let exact = ged(&t, &q, &g).distance;
        assert!(lb <= exact, "lb={lb} exact={exact}");
    }

    #[test]
    fn css_bound_zero_for_identical() {
        let mut t = SymbolTable::new();
        let q = chain(&mut t, &["A", "B"], "p");
        let g = chain(&mut t, &["A", "B"], "p");
        assert_eq!(lb_ged_css_certain(&t, &q, &g), 0);
    }

    #[test]
    fn uncertain_bound_holds_for_every_world() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.uncertain_vertex("m", &[("NBA_Player", 0.6), ("Professor", 0.3), ("Actor", 0.1)]);
        b.uncertain_vertex("n", &[("State", 0.7), ("City", 0.3)]);
        b.edge("x", "m", "spouse");
        b.edge("m", "n", "birthPlace");
        let g = b.into_uncertain();

        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("x", "?p");
        bq.vertex("a", "Actor");
        bq.vertex("c", "City");
        bq.edge("x", "a", "spouse");
        bq.edge("a", "c", "birthPlace");
        let q = bq.into_graph();

        let lb = lb_ged_css_uncertain(&t, &q, &g);
        for w in g.possible_worlds() {
            let exact = ged(&t, &q, &w.graph).distance;
            assert!(lb <= exact, "lb={lb} exceeds exact={exact} in a world");
        }
    }

    #[test]
    fn restricted_bound_at_least_full_bound() {
        // Restricting label sets can only shrink the bipartite graph,
        // so the per-group bound is at least the whole-graph bound.
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.uncertain_vertex("m", &[("A", 0.5), ("B", 0.5)]);
        b.uncertain_vertex("n", &[("C", 0.5), ("D", 0.5)]);
        b.edge("m", "n", "p");
        let g = b.into_uncertain();
        let mut bq = GraphBuilder::new(&mut t);
        bq.vertex("a", "A");
        bq.vertex("c", "C");
        bq.edge("a", "c", "p");
        let q = bq.into_graph();

        let full = lb_ged_css_uncertain(&t, &q, &g);
        let a = t.get("A").unwrap();
        let d = t.get("D").unwrap();
        let restricted = lb_ged_css_restricted(&t, &q, &g, &[vec![a], vec![d]]);
        assert!(restricted >= full);
    }
}
