//! c-star lower bound (Zeng et al., VLDB'09 — "Comparing Stars", \[29\] in
//! the paper).
//!
//! Each vertex is summarized by its *star*: its own label plus the
//! multisets of incident edge labels and neighbor labels. The star mapping
//! distance `μ` is the minimum assignment (Hungarian) between the two star
//! sets under a per-star edit distance; dividing by the maximum number of
//! stars a single edit operation can affect, `max(4, Δ + 1)`, yields a GED
//! lower bound.
//!
//! Our cost model has labeled directed edges; stars use the undirected
//! neighborhood and fold edge labels into the leaf multiset, which keeps
//! the per-operation effect within the same `max(4, Δ + 1)` budget (an
//! edge-label substitution touches two stars, each by one).

use crate::bounds::LowerBound;
use crate::label_sets::multiset_lambda;
use uqsj_graph::{Graph, Symbol, SymbolTable};
use uqsj_matching::hungarian;

/// The star of a vertex.
#[derive(Clone, Debug)]
pub struct StarStructure {
    /// Root vertex label.
    pub root: Symbol,
    /// Incident edge labels (both directions), sorted.
    pub edge_labels: Vec<Symbol>,
    /// Neighbor vertex labels (both directions), sorted.
    pub leaf_labels: Vec<Symbol>,
}

/// Extract all stars of a graph.
pub fn stars(g: &Graph) -> Vec<StarStructure> {
    g.vertices()
        .map(|v| {
            let mut edge_labels = Vec::with_capacity(g.degree(v));
            let mut leaf_labels = Vec::with_capacity(g.degree(v));
            for e in g.out_edges(v) {
                edge_labels.push(e.label);
                leaf_labels.push(g.label(e.dst));
            }
            for e in g.in_edges(v) {
                edge_labels.push(e.label);
                leaf_labels.push(g.label(e.src));
            }
            edge_labels.sort_unstable();
            leaf_labels.sort_unstable();
            StarStructure { root: g.label(v), edge_labels, leaf_labels }
        })
        .collect()
}

/// Edit distance between two stars under the unit-cost model.
pub fn star_distance(table: &SymbolTable, a: &StarStructure, b: &StarStructure) -> u64 {
    let root = u64::from(!uqsj_graph::labels_match(table, a.root, b.root));
    let deg_a = a.edge_labels.len();
    let deg_b = b.edge_labels.len();
    let lam_e = multiset_lambda(table, &a.edge_labels, &b.edge_labels);
    let lam_l = multiset_lambda(table, &a.leaf_labels, &b.leaf_labels);
    let edge_mismatch = (deg_a.max(deg_b) - lam_e) as u64;
    let leaf_mismatch = (deg_a.max(deg_b) - lam_l) as u64;
    // One edit op changes any single star distance by at most 2 (an edge
    // op moves both mismatch terms by one), keeping μ within the
    // `max(4, Δ+1) · ged` budget that the final division relies on.
    root + edge_mismatch + leaf_mismatch
}

/// Star mapping distance `μ(q, g)`: minimum assignment between the star
/// multisets, padding the smaller side with empty stars.
pub fn star_mapping_distance(table: &SymbolTable, q: &Graph, g: &Graph) -> u64 {
    let sq = stars(q);
    let sg = stars(g);
    let n = sq.len().max(sg.len());
    if n == 0 {
        return 0;
    }
    let empty_cost = |s: &StarStructure| -> u64 {
        // Deleting a whole star: the root plus each leaf (edge + vertex).
        1 + 2 * s.edge_labels.len() as u64
    };
    let mut cost = vec![vec![0u64; n]; n];
    for (i, row) in cost.iter_mut().enumerate() {
        for (j, c) in row.iter_mut().enumerate() {
            *c = match (sq.get(i), sg.get(j)) {
                (Some(a), Some(b)) => star_distance(table, a, b),
                (Some(a), None) => empty_cost(a),
                (None, Some(b)) => empty_cost(b),
                (None, None) => 0,
            };
        }
    }
    hungarian(&cost).0
}

/// The c-star GED lower bound: `μ / max(4, Δ + 1)` (floor — valid because
/// `μ <= max(4, Δ+1) · ged`).
pub fn lb_ged_cstar(table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
    let mu = star_mapping_distance(table, q, g);
    let max_deg = q
        .vertices()
        .map(|v| q.degree(v))
        .chain(g.vertices().map(|v| g.degree(v)))
        .max()
        .unwrap_or(0) as u64;
    let denom = 4u64.max(max_deg + 1);
    (mu / denom) as u32
}

/// [`LowerBound`] adapter (structure-only for uncertain graphs).
#[derive(Clone, Copy, Debug, Default)]
pub struct CStarBound;

impl LowerBound for CStarBound {
    fn name(&self) -> &'static str {
        "CStar"
    }

    fn stage_label(&self) -> &'static str {
        "cstar"
    }

    fn certain(&self, table: &SymbolTable, q: &Graph, g: &Graph) -> u32 {
        lb_ged_cstar(table, q, g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::astar::ged;
    use uqsj_graph::{GraphBuilder, VertexId};

    #[test]
    fn identical_graphs_zero() {
        let mut t = SymbolTable::new();
        let mk = |t: &mut SymbolTable| {
            let mut b = GraphBuilder::new(t);
            b.vertex("a", "A");
            b.vertex("b", "B");
            b.edge("a", "b", "p");
            b.into_graph()
        };
        let q = mk(&mut t);
        let g = mk(&mut t);
        assert_eq!(lb_ged_cstar(&t, &q, &g), 0);
    }

    #[test]
    fn cstar_is_admissible_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut t = SymbolTable::new();
        let labels = ["A", "B", "C"].map(|l| t.intern(l));
        let elabels = ["p", "q"].map(|l| t.intern(l));
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..60 {
            let mk = |rng: &mut SmallRng| {
                let n = rng.gen_range(1..5);
                let mut g = Graph::new();
                for _ in 0..n {
                    g.add_vertex(labels[rng.gen_range(0..3usize)]);
                }
                for s in 0..n {
                    for d in 0..n {
                        if s != d && rng.gen_bool(0.3) {
                            g.add_edge(
                                VertexId(s as u32),
                                VertexId(d as u32),
                                elabels[rng.gen_range(0..2usize)],
                            );
                        }
                    }
                }
                g
            };
            let q = mk(&mut rng);
            let g = mk(&mut rng);
            let lb = lb_ged_cstar(&t, &q, &g);
            let exact = ged(&t, &q, &g).distance;
            assert!(lb <= exact, "cstar lb={lb} > exact={exact}");
        }
    }
}
