//! GED lower bounds for the filtering phase.
//!
//! * [`css`] — the paper's novel CSS-based bound (Theorems 1 and 3). It is
//!   the only bound here that handles uncertain graphs *without*
//!   enumerating possible worlds and *without* discarding labels.
//! * [`size`], [`label_multiset`] — the two prior "global filters"
//!   (Sec. 8.2): vertex/edge-count difference (Zeng et al., VLDB'09) and
//!   label-multiset difference (Zhao et al., ICDE'12). Theorem 2 of the
//!   paper proves CSS dominates both; the property tests here check it.
//! * [`cstar`], [`path_gram`], [`partition`], [`segos`] — the n-gram and
//!   partition-based baselines the paper compares against in Fig. 15.
//!   Faithful-in-spirit reimplementations; for uncertain inputs they run
//!   structure-only, exactly as the paper had to run them.

pub mod css;
pub mod cstar;
pub mod kat;
pub mod label_multiset;
pub mod partition;
pub mod path_gram;
pub mod segos;
pub mod size;

use uqsj_graph::{Graph, SymbolTable, UncertainGraph};

/// A uniform interface over all lower bounds, used by the
/// filter-comparison experiment (Fig. 15), the ablation benches, and the
/// adaptive join cascade (which treats [`all_bounds`] as its stage
/// registry).
pub trait LowerBound {
    /// Short name for reporting ("CSS", "Path", ...).
    fn name(&self) -> &'static str;

    /// Stable snake_case identifier for metrics and per-stage join
    /// statistics (`uqsj_join_pruned_total{stage=...}`). Unlike
    /// [`LowerBound::name`] this never changes spelling — dashboards and
    /// the CI metric catalogue key on it.
    fn stage_label(&self) -> &'static str;

    /// A lower bound on `ged(q, g)` for two certain graphs.
    fn certain(&self, table: &SymbolTable, q: &Graph, g: &Graph) -> u32;

    /// A lower bound on `ged(q, pw(g))` valid for **every** possible world
    /// of `g`. The default discards label information (keeps structure
    /// only), which is the only sound generic lift — and precisely the
    /// handicap the paper describes for prior bounds (Sec. 1.2). The CSS
    /// bound overrides this with Theorem 3.
    fn uncertain(&self, _table: &SymbolTable, q: &Graph, g: &UncertainGraph) -> u32 {
        let (t2, q2, g2) = structure_only_pair(q, g);
        self.certain(&t2, &q2, &g2)
    }
}

/// Every filtering lower bound at its default configuration, in cheap-to-
/// expensive order: size, label-multiset, CSS, c-star, path n-grams,
/// partition, SEGOS cascade. This is the canonical list the filter
/// comparison (Fig. 15), the conformance oracles, and the adaptive join
/// cascade iterate — adding a bound here automatically enrolls it in all
/// three. `Send + Sync` because the cascade planner shares the registry
/// across join workers.
pub fn all_bounds() -> Vec<Box<dyn LowerBound + Send + Sync>> {
    vec![
        Box::new(size::SizeBound),
        Box::new(label_multiset::LabelMultisetBound),
        Box::new(css::CssBound),
        Box::new(cstar::CStarBound),
        Box::new(path_gram::PathBound),
        Box::new(partition::ParsBound::default()),
        Box::new(segos::SegosBound),
    ]
}

/// Build structure-only copies of `q` and `g` over a fresh symbol table in
/// which every vertex/edge carries the same (non-wildcard) label, so that
/// all label terms vanish from certain-graph bounds.
pub fn structure_only_pair(q: &Graph, g: &UncertainGraph) -> (SymbolTable, Graph, Graph) {
    let mut t = SymbolTable::new();
    let w = t.intern("any");
    let mut q2 = Graph::new();
    for _ in 0..q.vertex_count() {
        q2.add_vertex(w);
    }
    for e in q.edges() {
        q2.add_edge(e.src, e.dst, w);
    }
    let mut g2 = Graph::new();
    for _ in 0..g.vertex_count() {
        g2.add_vertex(w);
    }
    for e in g.edges() {
        g2.add_edge(e.src, e.dst, w);
    }
    (t, q2, g2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uqsj_graph::GraphBuilder;

    #[test]
    fn structure_only_pair_preserves_shape() {
        let mut t = SymbolTable::new();
        let mut b = GraphBuilder::new(&mut t);
        b.vertex("x", "?x");
        b.uncertain_vertex("m", &[("A", 0.5), ("B", 0.5)]);
        b.edge("x", "m", "p");
        let (q, g) = b.into_both();
        let (t2, q2, g2) = structure_only_pair(&q, &g);
        assert_eq!(q2.vertex_count(), 2);
        assert_eq!(g2.vertex_count(), 2);
        assert_eq!(q2.edge_count(), 1);
        assert_eq!(g2.edge_count(), 1);
        // All labels identical.
        assert_eq!(q2.label(uqsj_graph::VertexId(0)), g2.label(uqsj_graph::VertexId(1)));
        assert!(!t2.is_wildcard(q2.label(uqsj_graph::VertexId(0))));
    }
}
