//! Graph edit distance (GED) computation and filtering for the uncertain
//! graph similarity join.
//!
//! The paper's cost model (Sec. 3.1.2) uses six unit-cost primitive edit
//! operations: insert/delete an isolated labeled vertex, insert/delete an
//! edge, and substitute a vertex/edge label. Labels that are SPARQL
//! variables (`?x`) are wildcards and substitute for free.
//!
//! * [`astar`] — exact GED by A\* search over vertex mappings (the
//!   verification algorithm, following Riesen & Bunke's bipartite-heuristic
//!   A\* cited as \[17\] in the paper), plus a τ-bounded variant used in the
//!   refinement phase of Algorithm 1.
//! * [`bounds`] — the filtering lower bounds: the paper's novel CSS-based
//!   bound (Theorems 1 and 3), and the prior-work baselines it is compared
//!   against (label-multiset, size, c-star, path n-grams, partition-based,
//!   SEGOS-style cascade).
//! * [`label_sets`] — multiset label intersections `λ_V`, `λ_E` under the
//!   wildcard rule, and the vertex-label bipartite graph of Def. 10.
//! * [`engine`] — the reusable search workspace behind [`ged`] /
//!   [`ged_bounded`]: slab-allocated states, a counted-multiset
//!   incremental heuristic, and per-pair profiles that possible-world
//!   verification patches in place instead of rebuilding.
//! * [`mod@reference`] — the original sort-and-merge A\* retained as a test
//!   oracle; the engine must reproduce it bit-for-bit.

pub mod astar;
pub mod bounds;
pub mod engine;
pub mod label_sets;
pub mod reference;
pub mod upper;

pub use astar::{ged, ged_bounded, GedResult};
pub use bounds::css::{lb_ged_css_certain, lb_ged_css_uncertain, CssTerms};
pub use bounds::label_multiset::lb_ged_label_multiset;
pub use bounds::size::lb_ged_size;
pub use engine::{GedEngine, PairProfile, RunStats};
pub use upper::{ged_upper_bipartite, mapping_cost};
