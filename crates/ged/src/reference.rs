//! The original sort-and-merge A\* implementation, retained verbatim as a
//! test oracle for the incremental [`crate::engine`].
//!
//! This is the naive reference the oracle tests compare against: every
//! state clones its mapping `Vec`, and the heuristic re-collects and
//! re-sorts the g-side label vectors on every expansion. It is
//! deliberately *not* optimized — its value is that it is simple enough to
//! audit by eye and that the engine must reproduce its results
//! bit-for-bit (same distances, same mappings, same expansion order).
//! Production code must call [`crate::ged`] / [`crate::ged_bounded`]
//! instead.

use crate::astar::GedResult;
use crate::label_sets::{edge_multiset_cost, label_sub_cost, multiset_lambda};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use uqsj_graph::{Graph, Symbol, SymbolTable, VertexId};

/// Exact GED by the reference search. See [`crate::ged`].
pub fn ged_reference(table: &SymbolTable, q: &Graph, g: &Graph) -> GedResult {
    ged_bounded_reference(table, q, g, u32::MAX).expect("unbounded search always finds a mapping")
}

/// τ-bounded GED by the reference search. See [`crate::ged_bounded`].
pub fn ged_bounded_reference(
    table: &SymbolTable,
    q: &Graph,
    g: &Graph,
    tau: u32,
) -> Option<GedResult> {
    let search = Search::new(table, q, g);
    search.run(tau)
}

/// Pairwise edge-label lookup for one graph: labels on each ordered pair.
struct PairIndex {
    map: HashMap<(u32, u32), Vec<Symbol>>,
}

impl PairIndex {
    fn new(g: &Graph) -> Self {
        let mut map: HashMap<(u32, u32), Vec<Symbol>> = HashMap::with_capacity(g.edge_count());
        for e in g.edges() {
            map.entry((e.src.0, e.dst.0)).or_default().push(e.label);
        }
        Self { map }
    }

    fn labels(&self, src: u32, dst: u32) -> &[Symbol] {
        self.map.get(&(src, dst)).map_or(&[], |v| v.as_slice())
    }
}

const EPS: u32 = u32::MAX;

#[derive(Clone, PartialEq, Eq)]
struct State {
    /// Images of q vertices `order[0..k]`; EPS = deleted.
    mapping: Vec<u32>,
    /// Bitmask of used g vertices.
    used: u128,
    /// Cost so far.
    cost: u32,
}

#[derive(PartialEq, Eq)]
struct QueueEntry {
    f: u32,
    tie: u64,
    state: State,
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.f, self.tie).cmp(&(other.f, other.tie))
    }
}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct Search<'a> {
    table: &'a SymbolTable,
    q: &'a Graph,
    g: &'a Graph,
    /// Processing order of q vertices (largest degree first).
    order: Vec<u32>,
    q_pairs: PairIndex,
    g_pairs: PairIndex,
    /// For each prefix length k, the sorted multiset of labels of the q
    /// vertices not yet processed.
    q_rem_labels: Vec<Vec<Symbol>>,
    /// For each prefix length k, the number of q edges with at least one
    /// endpoint not yet processed, and their label multiset.
    q_rem_edge_labels: Vec<Vec<Symbol>>,
}

impl<'a> Search<'a> {
    fn new(table: &'a SymbolTable, q: &'a Graph, g: &'a Graph) -> Self {
        assert!(g.vertex_count() <= 128, "A* GED supports up to 128 vertices");
        let mut order: Vec<u32> = (0..q.vertex_count() as u32).collect();
        order.sort_by_key(|&v| Reverse(q.degree(VertexId(v))));

        // Precompute remainder label multisets per prefix length.
        let n = order.len();
        let mut q_rem_labels = vec![Vec::new(); n + 1];
        for k in 0..=n {
            let mut labels: Vec<Symbol> =
                order[k..].iter().map(|&v| q.label(VertexId(v))).collect();
            labels.sort_unstable();
            q_rem_labels[k] = labels;
        }
        let mut pos = vec![0usize; n]; // position of each q vertex in order
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        let mut q_rem_edge_labels = vec![Vec::new(); n + 1];
        for (k, slot) in q_rem_edge_labels.iter_mut().enumerate() {
            let mut labels: Vec<Symbol> = q
                .edges()
                .iter()
                .filter(|e| pos[e.src.index()] >= k || pos[e.dst.index()] >= k)
                .map(|e| e.label)
                .collect();
            labels.sort_unstable();
            *slot = labels;
        }

        Self {
            table,
            q,
            g,
            order,
            q_pairs: PairIndex::new(q),
            g_pairs: PairIndex::new(g),
            q_rem_labels,
            q_rem_edge_labels,
        }
    }

    /// Admissible heuristic: label-multiset bound on the unmapped parts.
    fn heuristic(&self, state: &State) -> u32 {
        let k = state.mapping.len();
        let q_rem_v = &self.q_rem_labels[k];
        // Remaining g vertex labels.
        let mut g_rem_v: Vec<Symbol> = Vec::with_capacity(self.g.vertex_count());
        for v in 0..self.g.vertex_count() {
            if state.used & (1u128 << v) == 0 {
                g_rem_v.push(self.g.label(VertexId(v as u32)));
            }
        }
        g_rem_v.sort_unstable();
        let lam_v = multiset_lambda(self.table, q_rem_v, &g_rem_v);
        let vcost = (q_rem_v.len().max(g_rem_v.len()) - lam_v) as u32;

        let q_rem_e = &self.q_rem_edge_labels[k];
        let mut g_rem_e: Vec<Symbol> = Vec::new();
        for e in self.g.edges() {
            let s_un = state.used & (1u128 << e.src.0) == 0;
            let d_un = state.used & (1u128 << e.dst.0) == 0;
            if s_un || d_un {
                g_rem_e.push(e.label);
            }
        }
        g_rem_e.sort_unstable();
        let lam_e = multiset_lambda(self.table, q_rem_e, &g_rem_e);
        let ecost = (q_rem_e.len().max(g_rem_e.len()) - lam_e) as u32;
        vcost + ecost
    }

    /// Incremental cost of extending `state` by mapping the next q vertex
    /// (`self.order[k]`) to `target` (a g vertex id, or EPS).
    fn extend_cost(&self, state: &State, target: u32) -> u32 {
        let k = state.mapping.len();
        let u = self.order[k];
        let mut cost = if target == EPS {
            1 // vertex deletion
        } else {
            label_sub_cost(self.table, self.q.label(VertexId(u)), self.g.label(VertexId(target)))
        };
        // Edges between the new vertex and every previously processed one.
        for (i, &img) in state.mapping.iter().enumerate() {
            let w = self.order[i];
            let q_fwd = self.q_pairs.labels(w, u);
            let q_bwd = self.q_pairs.labels(u, w);
            let (g_fwd, g_bwd): (&[Symbol], &[Symbol]) = if img == EPS || target == EPS {
                (&[], &[])
            } else {
                (self.g_pairs.labels(img, target), self.g_pairs.labels(target, img))
            };
            cost += edge_multiset_cost(self.table, q_fwd, g_fwd);
            cost += edge_multiset_cost(self.table, q_bwd, g_bwd);
        }
        cost
    }

    /// Cost of completing a full q mapping: insert remaining g vertices and
    /// every g edge with at least one unmapped endpoint.
    fn completion_cost(&self, state: &State) -> u32 {
        let mut cost = 0u32;
        for v in 0..self.g.vertex_count() {
            if state.used & (1u128 << v) == 0 {
                cost += 1;
            }
        }
        for e in self.g.edges() {
            let s_un = state.used & (1u128 << e.src.0) == 0;
            let d_un = state.used & (1u128 << e.dst.0) == 0;
            if s_un || d_un {
                cost += 1;
            }
        }
        cost
    }

    fn run(&self, tau: u32) -> Option<GedResult> {
        let n_q = self.order.len();
        let mut heap: BinaryHeap<Reverse<QueueEntry>> = BinaryHeap::new();
        let mut tie = 0u64;
        let root = State { mapping: Vec::new(), used: 0, cost: 0 };
        let h0 = self.heuristic(&root);
        if h0 > tau {
            return None;
        }
        heap.push(Reverse(QueueEntry { f: h0, tie, state: root }));

        while let Some(Reverse(QueueEntry { f, state, .. })) = heap.pop() {
            if f > tau {
                return None; // best remaining estimate exceeds the bound
            }
            let k = state.mapping.len();
            if k == n_q {
                let total = state.cost + self.completion_cost(&state);
                // completion_cost was already folded into f for enqueued
                // complete states (see below), so total == f here.
                debug_assert_eq!(total, f);
                if total > tau {
                    return None;
                }
                // Reconstruct mapping in original q vertex order.
                let mut mapping = vec![None; n_q];
                for (i, &img) in state.mapping.iter().enumerate() {
                    let u = self.order[i] as usize;
                    mapping[u] = (img != EPS).then_some(VertexId(img));
                }
                return Some(GedResult { distance: total, mapping });
            }

            // Expand: map order[k] to each unused g vertex or to EPS.
            let mut push = |target: u32, heap: &mut BinaryHeap<Reverse<QueueEntry>>| {
                let delta = self.extend_cost(&state, target);
                let mut next = state.clone();
                next.mapping.push(target);
                if target != EPS {
                    next.used |= 1u128 << target;
                }
                next.cost += delta;
                let h = if next.mapping.len() == n_q {
                    self.completion_cost(&next)
                } else {
                    self.heuristic(&next)
                };
                let f = next.cost.saturating_add(h);
                if f <= tau {
                    tie += 1;
                    heap.push(Reverse(QueueEntry { f, tie, state: next }));
                }
            };
            for v in 0..self.g.vertex_count() as u32 {
                if state.used & (1u128 << v) == 0 {
                    push(v, &mut heap);
                }
            }
            push(EPS, &mut heap);
        }
        None
    }
}
