//! Limit and failure-mode tests: documented panics fire, and the search
//! behaves at its boundaries.

use uqsj_graph::{Graph, SymbolTable};

#[test]
#[should_panic(expected = "up to 128 vertices")]
fn astar_rejects_oversized_graphs() {
    let mut t = SymbolTable::new();
    let l = t.intern("A");
    let small = {
        let mut g = Graph::new();
        g.add_vertex(l);
        g
    };
    let mut big = Graph::new();
    for _ in 0..129 {
        big.add_vertex(l);
    }
    let _ = uqsj_ged::ged(&t, &small, &big);
}

#[test]
fn astar_handles_exactly_128_distinct_vertices() {
    // 128 distinctly-labeled vertices: at τ = 0 every wrong assignment
    // costs immediately, so the search follows the single zero-cost path.
    // (With *identical* labels the zero-cost tie space is combinatorial —
    // that regime is what the filtering bounds exist to avoid.)
    let mut t = SymbolTable::new();
    let labels: Vec<_> = (0..128).map(|i| t.intern(&format!("L{i}"))).collect();
    let mk = || {
        let mut g = Graph::new();
        for &l in &labels {
            g.add_vertex(l);
        }
        g
    };
    let (a, b) = (mk(), mk());
    let r = uqsj_ged::ged_bounded(&t, &a, &b, 0).expect("identical graphs");
    assert_eq!(r.distance, 0);
}

#[test]
fn world_count_saturates_instead_of_overflowing() {
    use uqsj_graph::{LabelAlternative, UncertainGraph, UncertainVertex};
    let mut t = SymbolTable::new();
    let mut g = UncertainGraph::new();
    // 200 vertices with 4 alternatives each: 4^200 >> u128::MAX.
    let alts: Vec<LabelAlternative> = (0..4)
        .map(|i| LabelAlternative { label: t.intern(&format!("L{i}")), prob: 0.25 })
        .collect();
    for _ in 0..200 {
        g.add_vertex(UncertainVertex { alternatives: alts.clone() });
    }
    assert_eq!(g.world_count(), u128::MAX, "must saturate");
}

#[test]
fn bounded_search_at_tau_zero_is_isomorphism_mod_wildcards() {
    // τ=0 decision doubles as a labeled-isomorphism test — used by the
    // "matches modulo entity phrases" correctness judgment.
    let mut t = SymbolTable::new();
    let a_lbl = t.intern("A");
    let b_lbl = t.intern("B");
    let p = t.intern("p");
    let mut g1 = Graph::new();
    let x = g1.add_vertex(a_lbl);
    let y = g1.add_vertex(b_lbl);
    g1.add_edge(x, y, p);
    // Same graph with vertex order swapped.
    let mut g2 = Graph::new();
    let y2 = g2.add_vertex(b_lbl);
    let x2 = g2.add_vertex(a_lbl);
    g2.add_edge(x2, y2, p);
    assert!(uqsj_ged::ged_bounded(&t, &g1, &g2, 0).is_some());
    // And a non-isomorphic variant fails.
    let mut g3 = Graph::new();
    let x3 = g3.add_vertex(a_lbl);
    let y3 = g3.add_vertex(b_lbl);
    g3.add_edge(y3, x3, p); // reversed edge
    assert!(uqsj_ged::ged_bounded(&t, &g1, &g3, 0).is_none());
}
