//! Property-based tests of the GED machinery: every lower bound must be
//! admissible (never exceed the exact distance), the CSS bound must
//! dominate the label-multiset bound (Theorem 2 of the paper), and the
//! uncertain CSS bound must hold uniformly over possible worlds
//! (Theorem 3).

use proptest::prelude::*;
use uqsj_ged::astar::ged;
use uqsj_ged::bounds::css::{lb_ged_css_certain, lb_ged_css_uncertain};
use uqsj_ged::bounds::cstar::lb_ged_cstar;
use uqsj_ged::bounds::kat::lb_ged_kat;
use uqsj_ged::bounds::label_multiset::lb_ged_label_multiset;
use uqsj_ged::bounds::partition::lb_ged_partition;
use uqsj_ged::bounds::path_gram::lb_ged_path;
use uqsj_ged::bounds::segos::lb_ged_segos;
use uqsj_ged::bounds::size::lb_ged_size;
use uqsj_graph::{Graph, LabelAlternative, SymbolTable, UncertainGraph, UncertainVertex, VertexId};

const VLABELS: [&str; 5] = ["A", "B", "C", "D", "?x"];
const ELABELS: [&str; 3] = ["p", "q", "r"];

/// Strategy: a small random labeled digraph described as
/// (vertex label indexes, edges (src, dst, edge label index)).
fn graph_strategy(max_v: usize) -> impl Strategy<Value = (Vec<u8>, Vec<(u8, u8, u8)>)> {
    (1..=max_v).prop_flat_map(move |n| {
        let vertices = prop::collection::vec(0u8..VLABELS.len() as u8, n);
        let edges = prop::collection::vec(
            (0..n as u8, 0..n as u8, 0u8..ELABELS.len() as u8),
            0..=(n * 2).min(6),
        );
        (vertices, edges)
    })
}

fn build(table: &mut SymbolTable, vl: &[u8], el: &[(u8, u8, u8)]) -> Graph {
    let mut g = Graph::new();
    for &v in vl {
        let s = table.intern(VLABELS[v as usize]);
        g.add_vertex(s);
    }
    for &(s, d, l) in el {
        if s != d {
            let sym = table.intern(ELABELS[l as usize]);
            g.add_edge(VertexId(s as u32), VertexId(d as u32), sym);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_certain_bounds_are_admissible(
        a in graph_strategy(4),
        b in graph_strategy(4),
    ) {
        let mut t = SymbolTable::new();
        let q = build(&mut t, &a.0, &a.1);
        let g = build(&mut t, &b.0, &b.1);
        let exact = ged(&t, &q, &g).distance;
        prop_assert!(lb_ged_size(&q, &g) <= exact, "size bound");
        prop_assert!(lb_ged_label_multiset(&t, &q, &g) <= exact, "LM bound");
        prop_assert!(lb_ged_css_certain(&t, &q, &g) <= exact, "CSS bound");
        prop_assert!(lb_ged_cstar(&t, &q, &g) <= exact, "c-star bound");
        prop_assert!(lb_ged_path(&t, &q, &g) <= exact, "path bound");
        prop_assert!(lb_ged_segos(&t, &q, &g) <= exact, "SEGOS bound");
        for size in [1usize, 2, 3] {
            prop_assert!(lb_ged_partition(&t, &q, &g, size) <= exact, "Pars bound size {size}");
        }
        for k in [1usize, 2] {
            prop_assert!(lb_ged_kat(&t, &q, &g, k) <= exact, "k-AT bound depth {k}");
        }
    }

    #[test]
    fn theorem2_css_dominates_label_multiset(
        a in graph_strategy(5),
        b in graph_strategy(5),
    ) {
        let mut t = SymbolTable::new();
        let q = build(&mut t, &a.0, &a.1);
        let g = build(&mut t, &b.0, &b.1);
        prop_assert!(
            lb_ged_css_certain(&t, &q, &g) >= lb_ged_label_multiset(&t, &q, &g),
            "Theorem 2 violated"
        );
    }

    #[test]
    fn ged_is_symmetric_and_zero_on_identity(
        a in graph_strategy(4),
        b in graph_strategy(4),
    ) {
        let mut t = SymbolTable::new();
        let q = build(&mut t, &a.0, &a.1);
        let g = build(&mut t, &b.0, &b.1);
        let d_qg = ged(&t, &q, &g).distance;
        let d_gq = ged(&t, &g, &q).distance;
        prop_assert_eq!(d_qg, d_gq, "GED must be symmetric");
        prop_assert_eq!(ged(&t, &q, &q).distance, 0, "self distance");
    }

    #[test]
    fn bounded_ged_agrees_with_exact(
        a in graph_strategy(4),
        b in graph_strategy(4),
        tau in 0u32..6,
    ) {
        let mut t = SymbolTable::new();
        let q = build(&mut t, &a.0, &a.1);
        let g = build(&mut t, &b.0, &b.1);
        let exact = ged(&t, &q, &g).distance;
        match uqsj_ged::ged_bounded(&t, &q, &g, tau) {
            Some(r) => {
                prop_assert_eq!(r.distance, exact);
                prop_assert!(exact <= tau);
            }
            None => prop_assert!(exact > tau),
        }
    }

    #[test]
    fn theorem3_uncertain_css_holds_in_every_world(
        a in graph_strategy(3),
        b in graph_strategy(3),
        extra in prop::collection::vec((0u8..4, 0u8..4), 0..3),
    ) {
        let mut t = SymbolTable::new();
        let q = build(&mut t, &a.0, &a.1);
        let base = build(&mut t, &b.0, &b.1);
        // Make `base` uncertain by giving some vertices extra labels.
        let mut u = UncertainGraph::new();
        for v in base.vertices() {
            let mut alts = vec![LabelAlternative { label: base.label(v), prob: 0.5 }];
            for &(vi, li) in &extra {
                if vi as usize == v.index() && alts.len() < 3 {
                    let l = t.intern(VLABELS[li as usize]);
                    if alts.iter().all(|a| a.label != l) {
                        alts.push(LabelAlternative { label: l, prob: 0.5 / 2.0 });
                    }
                }
            }
            u.add_vertex(UncertainVertex { alternatives: alts });
        }
        for e in base.edges() {
            u.add_edge(e.src, e.dst, e.label);
        }
        let lb = lb_ged_css_uncertain(&t, &q, &u);
        for w in u.possible_worlds() {
            let exact = ged(&t, &q, &w.graph).distance;
            prop_assert!(lb <= exact, "Theorem 3 violated: lb={} exact={}", lb, exact);
        }
    }
}
