//! Property-style oracle: the incremental [`GedEngine`] must reproduce
//! the retained naive reference search **exactly** — same distance, same
//! witnessing mapping, same bounded-search accept/reject — on hundreds of
//! seeded random graph pairs, wildcard labels included. One engine is
//! reused across every pair, so the test also proves that workspace reuse
//! leaks no state between searches.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use uqsj_ged::reference::{ged_bounded_reference, ged_reference};
use uqsj_ged::{ged, ged_bounded, GedEngine};
use uqsj_graph::{Graph, Symbol, SymbolTable, VertexId};

fn random_graph(rng: &mut SmallRng, vlabels: &[Symbol], elabels: &[Symbol]) -> Graph {
    // 0..=5 vertices: empty graphs are legal inputs and must round-trip.
    let n = rng.gen_range(0..6usize);
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_vertex(vlabels[rng.gen_range(0..vlabels.len())]);
    }
    for s in 0..n {
        for d in 0..n {
            if s != d && rng.gen_bool(0.25) {
                g.add_edge(
                    VertexId(s as u32),
                    VertexId(d as u32),
                    elabels[rng.gen_range(0..elabels.len())],
                );
            }
        }
    }
    g
}

#[test]
fn engine_matches_reference_on_200_seeded_pairs() {
    let mut t = SymbolTable::new();
    // "?x"/"?y" are vertex wildcards, "?e" an edge wildcard: the label-set
    // heuristic treats them specially, so the oracle must cover them.
    let vlabels: Vec<Symbol> = ["A", "B", "C", "D", "?x", "?y"].map(|l| t.intern(l)).to_vec();
    let elabels: Vec<Symbol> = ["p", "q", "?e"].map(|l| t.intern(l)).to_vec();
    let mut rng = SmallRng::seed_from_u64(0x5eed);
    let mut engine = GedEngine::new();
    for case in 0..200 {
        let q = random_graph(&mut rng, &vlabels, &elabels);
        let g = random_graph(&mut rng, &vlabels, &elabels);
        let want = ged_reference(&t, &q, &g);
        // The same engine serves every pair.
        let got = engine.ged(&t, &q, &g);
        assert_eq!(got, want, "case {case}: engine vs reference");
        // The free function routes through the thread-local engine.
        assert_eq!(ged(&t, &q, &g), want, "case {case}: free fn vs reference");
        for tau in 0..=4u32 {
            let bounded = ged_bounded_reference(&t, &q, &g, tau);
            assert_eq!(
                engine.ged_bounded(&t, &q, &g, tau),
                bounded,
                "case {case} tau {tau}: engine"
            );
            assert_eq!(ged_bounded(&t, &q, &g, tau), bounded, "case {case} tau {tau}: free fn");
        }
    }
}

#[test]
fn reference_agrees_with_itself_on_symmetry_spot_checks() {
    // GED is symmetric in distance (not in mapping); a cheap sanity net
    // for the oracle itself so a broken reference cannot silently
    // vacuously pass the equivalence test above.
    let mut t = SymbolTable::new();
    let vlabels: Vec<Symbol> = ["A", "B", "?x"].map(|l| t.intern(l)).to_vec();
    let elabels: Vec<Symbol> = ["p", "q"].map(|l| t.intern(l)).to_vec();
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..40 {
        let q = random_graph(&mut rng, &vlabels, &elabels);
        let g = random_graph(&mut rng, &vlabels, &elabels);
        assert_eq!(ged_reference(&t, &q, &g).distance, ged_reference(&t, &g, &q).distance);
    }
}
