#!/usr/bin/env bash
# Validate `uqsj-cli --metrics-out` Prometheus files against the golden
# family catalogue (ci/expected_metrics.txt). Two-way check:
#   1. every expected family appears in the union of the given files;
#   2. every `uqsj_*` family the files expose is in the catalogue, so a
#      renamed or newly added metric fails CI until the list is updated.
# Usage: ci/check_metrics.sh FILE.prom [FILE.prom ...]
set -euo pipefail

expected="$(dirname "$0")/expected_metrics.txt"
if [[ $# -eq 0 ]]; then
    echo "usage: $0 FILE.prom [FILE.prom ...]" >&2
    exit 2
fi

fail=0

while read -r name; do
    [[ -z "$name" || "$name" == \#* ]] && continue
    if ! grep -q "^# TYPE $name " "$@"; then
        echo "MISSING: expected metric family '$name' not exposed" >&2
        fail=1
    fi
done <"$expected"

while read -r fam; do
    if ! grep -q "^$fam\$" "$expected"; then
        echo "UNEXPECTED: metric family '$fam' not in $expected (rename, or add it)" >&2
        fail=1
    fi
done < <(grep -h '^# TYPE uqsj_' "$@" | awk '{print $3}' | sort -u)

if [[ $fail -eq 0 ]]; then
    total=$(grep -h '^# TYPE ' "$@" | awk '{print $3}' | sort -u | wc -l)
    echo "metric catalogue OK: $total distinct families across $# file(s)"
fi
exit $fail
